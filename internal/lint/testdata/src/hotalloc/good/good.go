// Package model exercises hotalloc's allowed shapes: named function values
// carry no per-call closure allocation, and scheduling-named methods on
// non-engine types are out of scope.
package model

import "svmsim/internal/lint/testdata/src/engine"

func tick() {}

func arm(s *engine.Sim, t *engine.Thread) {
	s.At(10, tick)
	t.Delay(5, tick)
}

// Spawn is out of scope: thread creation allocates the Thread and goroutine
// regardless, so a closure argument is noise next to it.
func spawn(s *engine.Sim) {
	s.Spawn("worker", func(th *engine.Thread) {})
}

// queue is not an engine type; its At is unrelated to the scheduler.
type queue struct{}

func (q *queue) At(i int, fn func()) {}

func other(q *queue) {
	q.At(0, func() {})
}
