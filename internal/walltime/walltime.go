// Package walltime is the only place harness code is allowed to read the
// host's wall clock. Simulation code under internal/ measures time exclusively
// in simulated processor cycles (engine.Time); a wall-clock read leaking into
// a simulation package would make runs timing-dependent and break the
// bit-determinism contract that the experiment tables rely on. The svmlint
// wallclock analyzer enforces this boundary: it forbids time.Now, time.Since
// and friends in every internal/ package except this one, so any legitimate
// harness-side measurement (progress reporting, elapsed-time footers) must go
// through walltime, where it is auditable as a package import rather than a
// call-site regex.
package walltime

import "time"

// Stopwatch measures elapsed host wall time for harness diagnostics (never
// for simulated behavior).
type Stopwatch struct {
	start time.Time
}

// Start begins a measurement.
func Start() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall time since Start.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// Seconds returns the wall time since Start in seconds.
func (s Stopwatch) Seconds() float64 {
	return s.Elapsed().Seconds()
}

// Timer is a host-clock deadline for harness supervision (the svmsimd job
// watchdog): it fires once after the configured wall-time duration. Like
// Stopwatch it must never feed simulated behavior — a Timer bounds how long
// the harness waits for a simulation, not what the simulation computes.
type Timer struct {
	t *time.Timer
}

// NewTimer starts a timer that fires on C after d.
func NewTimer(d time.Duration) *Timer {
	return &Timer{t: time.NewTimer(d)}
}

// C is the firing channel; it receives exactly once unless Stop wins.
func (t *Timer) C() <-chan time.Time {
	return t.t.C
}

// Stop cancels the timer; it reports whether the stop preempted the firing.
func (t *Timer) Stop() bool {
	return t.t.Stop()
}

// Sleep pauses the calling goroutine for d of host wall time (harness
// backoff pacing, e.g. between supervised job attempts).
func Sleep(d time.Duration) {
	time.Sleep(d)
}
