package machine_test

import (
	"errors"
	"reflect"
	"testing"

	"svmsim/internal/apps/fft"
	"svmsim/internal/engine"
	"svmsim/internal/machine"
	"svmsim/internal/network"
	"svmsim/internal/proto"
	"svmsim/internal/stats"
)

// crashCfg is a small cluster with the detector on and a generous watchdog.
func crashCfg(hb engine.Time) machine.Config {
	cfg := machine.Achievable()
	cfg.Procs = 8
	cfg.ProcsPerNode = 2
	cfg.Proto.HeartbeatIntervalCycles = hb
	cfg.MaxCycles = 2_000_000_000
	return cfg
}

// plainCycles runs the fault-free baseline once (to place crash times
// mid-run) and caches it.
var plainCyclesCache uint64

func plainCycles(t *testing.T) uint64 {
	t.Helper()
	if plainCyclesCache != 0 {
		return plainCyclesCache
	}
	cfg := machine.Achievable()
	cfg.Procs = 8
	cfg.ProcsPerNode = 2
	res, err := machine.Run(cfg, fft.New(fft.Small()))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	plainCyclesCache = res.Run.Cycles
	return plainCyclesCache
}

// TestCrashMidRunCompletesOnSurvivors is the tentpole's acceptance check: a
// node dies mid-run, the detector declares it, recovery re-homes its pages,
// and the surviving processors run the application to completion.
func TestCrashMidRunCompletesOnSurvivors(t *testing.T) {
	at := engine.Time(plainCycles(t) / 2)
	cfg := crashCfg(100_000)
	cfg.Net.Crash = &network.CrashPlan{AtCycles: map[int]engine.Time{3: at}}
	res, err := machine.Run(cfg, fft.New(fft.Small()))
	if err != nil {
		var lost *proto.LostPageError
		if errors.As(err, &lost) {
			// Legitimate outcome when the dead node held the only copy of a
			// page: still a structured, attributed failure, not a hang.
			t.Logf("run lost page %d (home n%d): %v", lost.Page, lost.DeadHome, err)
			return
		}
		t.Fatalf("crash run: %v", err)
	}
	rec := res.Run.Recovery
	if rec.ReconfigRounds == 0 || rec.HeartbeatsSent == 0 {
		t.Fatalf("no recovery happened: %+v", rec)
	}
	if rec.PagesRehomed == 0 && rec.PagesLost == 0 {
		t.Fatalf("dead node's pages neither re-homed nor lost: %+v", rec)
	}
	if res.Run.Net.CrashDrops == 0 {
		t.Fatalf("no traffic was dropped at the dead node")
	}
	if res.Run.Cycles <= uint64(at) {
		t.Fatalf("survivors finished at %d, before the crash at %d", res.Run.Cycles, at)
	}
}

// TestCrashMasterReelection kills node 0 (the barrier master): survivors
// must elect a new master and keep completing barriers.
func TestCrashMasterReelection(t *testing.T) {
	at := engine.Time(plainCycles(t) / 2)
	cfg := crashCfg(100_000)
	cfg.Net.Crash = &network.CrashPlan{AtCycles: map[int]engine.Time{0: at}}
	res, err := machine.Run(cfg, fft.New(fft.Small()))
	if err != nil {
		var lost *proto.LostPageError
		if !errors.As(err, new(*proto.LostPageError)) {
			t.Fatalf("master-crash run: %v", err)
		}
		errors.As(err, &lost)
		t.Logf("run lost page %d: %v", lost.Page, err)
		return
	}
	if res.Run.Recovery.ReconfigRounds == 0 {
		t.Fatalf("node 0 death never detected: %+v", res.Run.Recovery)
	}
}

// TestCrashRunDeterministic: same seed/plan, bit-identical counters.
func TestCrashRunDeterministic(t *testing.T) {
	at := engine.Time(plainCycles(t) / 3)
	runOnce := func() (*machine.Result, error) {
		cfg := crashCfg(150_000)
		cfg.Net.Crash = &network.CrashPlan{AtCycles: map[int]engine.Time{2: at}}
		return machine.Run(cfg, fft.New(fft.Small()))
	}
	r1, err1 := runOnce()
	r2, err2 := runOnce()
	if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
		t.Fatalf("divergent errors: %v vs %v", err1, err2)
	}
	if r1.Run.Cycles != r2.Run.Cycles {
		t.Fatalf("divergent cycles: %d vs %d", r1.Run.Cycles, r2.Run.Cycles)
	}
	if !reflect.DeepEqual(r1.Run.Recovery, r2.Run.Recovery) {
		t.Fatalf("divergent recovery: %+v vs %+v", r1.Run.Recovery, r2.Run.Recovery)
	}
	if !reflect.DeepEqual(r1.Run.Procs, r2.Run.Procs) {
		t.Fatalf("divergent per-proc stats")
	}
}

// TestNoCrashPlanInert: with no plan and no detector, the crash machinery
// must be invisible — zero recovery counters, zero crash drops, and
// bit-identical stats against the plain configuration path.
func TestNoCrashPlanInert(t *testing.T) {
	cfg := machine.Achievable()
	cfg.Procs = 8
	cfg.ProcsPerNode = 2
	res, err := machine.Run(cfg, fft.New(fft.Small()))
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}
	if res.Run.Recovery != (stats.Recovery{}) {
		t.Fatalf("recovery counters nonzero on clean run: %+v", res.Run.Recovery)
	}
	if res.Run.Net.CrashDrops != 0 {
		t.Fatalf("crash drops nonzero on clean run: %d", res.Run.Net.CrashDrops)
	}
}

// TestDetectorWithoutCrashCompletes: detector on, nobody dies — the run
// completes (heartbeat overhead only) with zero recovery actions.
func TestDetectorWithoutCrashCompletes(t *testing.T) {
	cfg := crashCfg(200_000)
	res, err := machine.Run(cfg, fft.New(fft.Small()))
	if err != nil {
		t.Fatalf("detector-on run: %v", err)
	}
	rec := res.Run.Recovery
	if rec.HeartbeatsSent == 0 {
		t.Fatalf("detector never beat")
	}
	if rec.ReconfigRounds != 0 || rec.PagesRehomed != 0 || rec.PagesLost != 0 || rec.LocksReclaimed != 0 {
		t.Fatalf("false positive: recovery ran with no crash: %+v", rec)
	}
	// Baseline result check still applies (no crash plan): Check ran inside
	// machine.Run, so the application results were verified under heartbeat
	// interference.
}

// TestValidateRejectsBadCrashPlans covers the guardrails.
func TestValidateRejectsBadCrashPlans(t *testing.T) {
	cfg := crashCfg(100_000)
	cfg.Net.Crash = &network.CrashPlan{AtCycles: map[int]engine.Time{99: 1000}}
	if _, err := machine.Run(cfg, fft.New(fft.Small())); err == nil {
		t.Fatal("out-of-range crash node accepted")
	}
	cfg = crashCfg(100_000)
	cfg.Net.Crash = &network.CrashPlan{AtCycles: map[int]engine.Time{
		0: 1, 1: 1, 2: 1, 3: 1,
	}}
	if _, err := machine.Run(cfg, fft.New(fft.Small())); err == nil {
		t.Fatal("all-nodes crash plan accepted")
	}
	cfg = crashCfg(100_000)
	cfg.Proto.Mode = proto.AURC
	cfg.Net.Crash = &network.CrashPlan{AtCycles: map[int]engine.Time{1: 1000}}
	if _, err := machine.Run(cfg, fft.New(fft.Small())); err == nil {
		t.Fatal("AURC + crash plan accepted")
	}
}
