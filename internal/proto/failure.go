package proto

import (
	"fmt"

	"svmsim/internal/engine"
	"svmsim/internal/network"
	"svmsim/internal/node"
	"svmsim/internal/stats"
)

// Failure detection and recovery for crash-stop node deaths (see
// internal/network's CrashPlan for the failure model). The detector is
// heartbeat-based: every HeartbeatIntervalCycles each node's interrupt
// controller fires a heartbeat round that probes every peer believed alive
// and suspects any peer silent longer than SuspectTimeoutCycles. Both the
// probes and the detection path pay the machine's real communication costs —
// interrupt issue/delivery, host overhead, NI occupancy, I/O and memory bus —
// so detection aggressiveness sits directly on the paper's interrupt-cost
// axis: a short interval finds deaths fast but steals handler time from every
// surviving processor on every round.
//
// On suspicion the observer runs one reconfiguration round: transport state
// toward the dead node is reclaimed (retry timers disarmed), a charged
// Reconfig broadcast announces the membership change, pages homed at the dead
// node are re-homed onto survivors holding valid copies (or marked lost),
// lock tokens that died with the node are reconstructed at the manager, and
// the barrier master is re-elected if it was the casualty. Protocol state is
// repaired centrally (the simulator's shared-state shortcut); the messages
// model the wire cost of the agreement the real protocol would run.
//
// Known windows, accepted and bounded by the engine's watchdogs: a crash at
// the final barrier after a partial release can leave no later traffic to
// trigger the master's catch-up path, and a lock request re-issued during
// recovery can race an in-flight grant (the double-queue self-heals: the
// spurious grant only moves the token). MaxCycles/StallCheckCycles remain
// the backstop for these, as for any stuck run.

// LostPageError reports an access to a page whose home crashed before any
// survivor held a valid copy: its only data died with the node. Structured so
// sweeps can distinguish "application state lost" from protocol bugs.
type LostPageError struct {
	Page      int32
	Node      int // the surviving node that faulted
	DeadHome  int // the crashed home
	NowCycles engine.Time
}

func (e *LostPageError) Error() string {
	return fmt.Sprintf("proto: page %d lost: home node %d crashed with the only valid copy (access from node %d, cycle %d)",
		e.Page, e.DeadHome, e.Node, e.NowCycles)
}

// failureDetector is the cluster's heartbeat failure detector and recovery
// driver. Like the barrier state it is a single shared structure: per-node
// views (lastHeard) are indexed by observer, and membership (dead) is
// repaired centrally during a reconfiguration round.
type failureDetector struct {
	sys      *System
	interval engine.Time
	timeout  engine.Time

	// lastHeard[observer][peer] is the last cycle observer's NI deposited a
	// heartbeat from peer. Zero-initialized, giving every node one timeout
	// of grace from the start of the run.
	lastHeard [][]engine.Time
	// dead[n] is the protocol's membership view: set when n is declared
	// dead, before any recovery yields, so concurrent observers join the
	// same round instead of starting their own.
	dead []bool
	// lost maps a lost page to the dead home it vanished with.
	lost map[int32]int32

	// reconfiguring serializes recovery rounds (their sends yield).
	reconfiguring bool
	reconfigCond  *engine.Cond
	// limbo parks threads that faulted on a lost page after they fail the
	// run; it is never signaled.
	limbo *engine.Cond

	ticks []*hbTick
	rec   stats.Recovery
}

// hbTick is the typed target of one node's periodic heartbeat timer.
type hbTick struct {
	fd   *failureDetector
	node int
}

// HandleEvent implements engine.EventTarget: the heartbeat timer firing.
func (h *hbTick) HandleEvent(any) { h.fd.tick(h.node) }

func newFailureDetector(sy *System) *failureDetector {
	n := len(sy.Nodes)
	fd := &failureDetector{
		sys:          sy,
		interval:     sy.Prm.HeartbeatIntervalCycles,
		timeout:      sy.Prm.SuspectTimeoutCycles,
		lastHeard:    make([][]engine.Time, n),
		dead:         make([]bool, n),
		lost:         make(map[int32]int32),
		reconfigCond: engine.NewCond(sy.Sim),
		limbo:        engine.NewCond(sy.Sim),
	}
	if fd.timeout == 0 {
		fd.timeout = 4 * fd.interval
	}
	for i := range fd.lastHeard {
		fd.lastHeard[i] = make([]engine.Time, n)
	}
	for i := 0; i < n; i++ {
		tk := &hbTick{fd: fd, node: i}
		fd.ticks = append(fd.ticks, tk)
		sy.Sim.AtTarget(fd.interval, tk, nil)
	}
	return fd
}

// alive reports the protocol's membership view of node n. Always true when
// the detector is off: without detection the protocol never learns of a
// death (a crashed peer then looks like an unbounded stall or exhausts a
// transport retry budget, whichever comes first).
func (sy *System) alive(n int) bool { return sy.fd == nil || !sy.fd.dead[n] }

// Recovery returns the failure-detection and recovery counters (all zero
// when the detector never ran).
func (sy *System) Recovery() stats.Recovery {
	if sy.fd == nil {
		return stats.Recovery{}
	}
	return sy.fd.rec
}

// tick fires in scheduler context at node n's heartbeat period: it raises the
// heartbeat interrupt and re-arms itself. Dead nodes stop ticking so the
// event queue can drain once the survivors finish.
func (fd *failureDetector) tick(n int) {
	sy := fd.sys
	if fd.dead[n] || sy.NIs[n][0].Crashed() {
		return
	}
	sy.Intc[n].Raise("hb", func(ht *engine.Thread, victim *node.Processor) {
		fd.beat(ht, victim, n)
	})
	sy.Sim.AtTarget(fd.interval, fd.ticks[n], nil)
}

// beat runs one heartbeat round in an interrupt handler on node n: probe
// every live peer, then suspect any peer silent past the timeout.
func (fd *failureDetector) beat(ht *engine.Thread, victim *node.Processor, n int) {
	sy := fd.sys
	if fd.dead[n] || sy.NIs[n][0].Crashed() {
		return
	}
	for peer := range sy.Nodes {
		if peer == n || fd.dead[peer] {
			continue
		}
		fd.rec.HeartbeatsSent++
		sy.send(ht, &network.Message{
			Kind:    network.Heartbeat,
			Src:     n,
			Dst:     peer,
			SrcProc: sy.statsProcID(n, victim),
			Size:    sy.Prm.CtlBytes,
		}, victim, true, false)
	}
	for peer := range sy.Nodes {
		if peer == n || fd.dead[peer] {
			continue
		}
		if sy.Sim.Now()-fd.lastHeard[n][peer] > fd.timeout {
			fd.reconfigure(ht, victim, n, peer)
		}
	}
}

// onHeartbeat records a deposited heartbeat in the receiver's view.
func (fd *failureDetector) onHeartbeat(m *network.Message) {
	fd.lastHeard[m.Dst][m.Src] = fd.sys.Sim.Now()
}

// reconfigure runs one recovery round after observer suspects deadNode.
// Rounds are serialized; the membership change is published before the first
// yield so concurrent suspicions of the same node collapse into this round.
func (fd *failureDetector) reconfigure(ht *engine.Thread, victim *node.Processor, observer, deadNode int) {
	sy := fd.sys
	for fd.reconfiguring {
		fd.reconfigCond.Wait(ht)
	}
	if fd.dead[deadNode] || fd.dead[observer] || sy.NIs[observer][0].Crashed() {
		return // already handled, or we died while queued
	}
	fd.reconfiguring = true
	start := sy.Sim.Now()
	fd.dead[deadNode] = true
	fd.rec.ReconfigRounds++
	fd.rec.SuspectCycles += uint64(start - fd.lastHeard[observer][deadNode])

	// Retire transport state toward the dead node on every surviving NI:
	// its retry timers disarm and future sends to it are no longer tracked,
	// so a dead peer can no longer exhaust anyone's retry budget.
	for n := range sy.NIs {
		if fd.dead[n] {
			continue
		}
		for _, ni := range sy.NIs[n] {
			ni.ReclaimPeer(deadNode)
		}
	}
	// Announce the new membership (the agreement the survivors would run;
	// here it carries the round's wire cost, the state repair is central).
	for peer := range sy.Nodes {
		if peer == observer || fd.dead[peer] {
			continue
		}
		sy.send(ht, &network.Message{
			Kind:    network.Reconfig,
			Src:     observer,
			Dst:     peer,
			SrcProc: sy.statsProcID(observer, victim),
			Size:    sy.Prm.CtlBytes,
			Payload: int32(deadNode),
		}, victim, true, false)
	}
	fd.recoverPages(deadNode)
	fd.recoverLocks(ht, deadNode)
	fd.recoverBarrier(deadNode)
	fd.rec.RecoveryCycles += uint64(sy.Sim.Now() - start)
	fd.reconfiguring = false
	fd.reconfigCond.Broadcast()
}

// recoverPages re-homes every page homed at the dead node onto the lowest-ID
// survivor holding a valid copy, or marks it lost. Requester-side state
// pointed at the dead home (in-flight fetches, unacknowledged diffs) is
// cleared first: the home died, so neither the reply nor the ack can arrive.
// No statement here yields, so the repair is atomic to the protocol.
func (fd *failureDetector) recoverPages(deadNode int) {
	sy := fd.sys
	for pg := int32(0); pg < int32(sy.pages); pg++ {
		if int(sy.pageHome[pg]) != deadNode {
			continue
		}
		for n, ns := range sy.ns {
			if fd.dead[n] {
				continue
			}
			if ns.fetching[pg] {
				delete(ns.fetching, pg)
			}
			if fl := ns.diffFlight[pg]; fl > 0 {
				ns.pendingAcks -= fl
				delete(ns.diffFlight, pg)
			}
		}
		newHome := -1
		for n, ns := range sy.ns {
			if fd.dead[n] {
				continue
			}
			if ns.state[pg] != pgInvalid {
				newHome = n
				break
			}
		}
		if newHome < 0 {
			fd.lost[pg] = int32(deadNode)
			fd.rec.PagesLost++
			continue
		}
		sy.pageHome[pg] = int32(newHome)
		// The new home's copy is now authoritative: homes never twin or
		// diff, they receive diffs.
		delete(sy.ns[newHome].twins, pg)
		fd.rec.PagesRehomed++
	}
	for n, ns := range sy.ns {
		if fd.dead[n] {
			continue
		}
		ns.fetchCond.Broadcast()
		ns.ackCond.Broadcast()
	}
}

// recoverLocks repairs every lock after deadNode's death: dead waiters are
// purged, the manager role moves off the dead node, a token that died with
// it is reconstructed at the manager, and survivors whose outstanding
// request died in transit re-issue it.
func (fd *failureDetector) recoverLocks(ht *engine.Thread, deadNode int) {
	sy := fd.sys
	for id, lg := range sy.locks {
		for n, ns := range sy.ns {
			if fd.dead[n] {
				continue
			}
			ln := ns.locks[id]
			keep := ln.queue[:0]
			for _, w := range ln.queue {
				if w.cond == nil && fd.dead[int(w.remote)] {
					continue
				}
				keep = append(keep, w)
			}
			ln.queue = keep
		}
		if fd.dead[int(lg.manager)] {
			lg.manager = int32(fd.lowestLive())
		}
		holder := -1
		for n, ns := range sy.ns {
			if !fd.dead[n] && ns.locks[id].haveToken {
				holder = n
				break
			}
		}
		// The latest grant any survivor performed tells us where the token
		// was last headed; if that destination is dead, the token died in
		// its hands (or on the wire toward them) and must be reconstructed.
		maxSeq, lastTo := uint64(0), int32(-1)
		for n, ns := range sy.ns {
			if fd.dead[n] {
				continue
			}
			ln := ns.locks[id]
			if lastTo < 0 || ln.lastGrantSeq > maxSeq {
				maxSeq, lastTo = ln.lastGrantSeq, ln.lastGrantedTo
			}
		}
		if holder < 0 && lastTo >= 0 && fd.dead[int(lastTo)] {
			newSeq := maxSeq + 1
			if lg.ownerSeq >= newSeq {
				newSeq = lg.ownerSeq + 1
			}
			for n, ns := range sy.ns {
				if !fd.dead[n] && ns.locks[id].tokenSeq >= newSeq {
					newSeq = ns.locks[id].tokenSeq + 1
				}
			}
			holder = int(lg.manager)
			hn := sy.ns[holder].locks[id]
			hn.haveToken = true
			hn.tokenSeq = newSeq
			lg.ownerView, lg.ownerSeq = int32(holder), newSeq
			fd.rec.LocksReclaimed++
			switch {
			case hn.waiting:
				// An Acquire is blocked here: hand it the rebuilt token as a
				// fabricated grant (no notices: the dead grantor's interval
				// died unflushed with it).
				hn.busy = true
				hn.granted = &lockGrantMsg{lock: lg.id, seq: newSeq}
				hn.grantCond.Broadcast()
			case len(hn.queue) > 0:
				hn.busy = true
				hn.requested = false
				holderNode, lockID := holder, id
				sy.Sim.Spawn(fmt.Sprintf("lock%d-reclaim@n%d", lockID, holderNode), func(t *engine.Thread) {
					sy.handoff(t, nil, false, sy.ns[holderNode], lockID)
				})
			default:
				hn.busy = false
				hn.requested = false
			}
		}
		if fd.dead[int(lg.ownerView)] {
			switch {
			case holder >= 0:
				lg.ownerView = int32(holder)
			case lastTo >= 0 && !fd.dead[int(lastTo)]:
				lg.ownerView = lastTo
			default:
				lg.ownerView = lg.manager
			}
		}
		// Survivors with an outstanding request that is queued nowhere live
		// and has no grant headed their way lost it in the dead node's
		// queue or on the wire: re-issue on their behalf.
		for n, ns := range sy.ns {
			if fd.dead[n] {
				continue
			}
			ln := ns.locks[id]
			if !ln.requested || ln.haveToken || n == holder {
				continue
			}
			if holder < 0 && int(lastTo) == n {
				continue // grant in flight toward n between live nodes
			}
			queued := false
			for w, ws := range sy.ns {
				if fd.dead[w] {
					continue
				}
				for _, q := range ws.locks[id].queue {
					if q.cond == nil && int(q.remote) == n {
						queued = true
						break
					}
				}
				if queued {
					break
				}
			}
			if queued {
				continue
			}
			dst := int(lg.manager)
			if dst == n {
				dst = int(lg.ownerView)
			}
			if dst == n {
				continue // inconsistent view; the watchdog is the backstop
			}
			sy.sendLockRequest(ht, nil, false, ns, id)
		}
	}
}

// recoverBarrier re-elects the barrier master if it died and wakes every
// barrier sleeper: stuck leaves re-send their arrival to the new master, a
// promoted leaf takes over collection, and the master re-evaluates
// readiness without the dead node.
func (fd *failureDetector) recoverBarrier(deadNode int) {
	sy := fd.sys
	b := sy.bar
	if b.master == deadNode {
		b.master = fd.lowestLive()
	}
	b.inbox[deadNode] = nil
	b.masterCond.Broadcast()
	for i := range b.relCond {
		if !fd.dead[i] {
			b.relCond[i].Broadcast()
		}
	}
}

// invalidateAllRemote conservatively drops every valid remote-homed page,
// flushing local modifications first (invalidatePage semantics). Used when
// the write-notice history a recovering node would need is no longer
// replayable: always safe, because the surviving homes hold all flushed
// data; costly, because every future access refetches.
func (ns *nodeState) invalidateAllRemote(t *engine.Thread, p *node.Processor) {
	sy := ns.sys
	inv := 0
	for pg := int32(0); pg < int32(sy.pages); pg++ {
		home := sy.pageHome[pg]
		if home < 0 || int(home) == ns.id || ns.state[pg] == pgInvalid {
			continue
		}
		if ns.invalidatePage(t, p, false, pg) {
			inv++
		}
	}
	if inv > 0 && p != nil {
		p.Charge(t, engine.Time(inv)*sy.Prm.InvalidatePageCycles, stats.LocalStall)
	}
}

// lowestLive returns the lowest-ID live node (recovery's deterministic
// election rule).
func (fd *failureDetector) lowestLive() int {
	for n, d := range fd.dead {
		if !d {
			return n
		}
	}
	panic("proto: no live node remains")
}
