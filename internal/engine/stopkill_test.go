package engine

import "testing"

func TestStopReturnsNilWithLiveThreads(t *testing.T) {
	s := New()
	progressed := false
	s.Spawn("worker", func(th *Thread) {
		th.Delay(10)
		progressed = true
		s.Stop()
		th.Delay(1_000_000) // never completes: Stop ends the run first
		t.Error("thread resumed after Stop")
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if !progressed {
		t.Fatal("thread never ran")
	}
	if s.Now() != 10 {
		t.Fatalf("stopped at %d, want 10", s.Now())
	}
}

func TestStopDiscardsRemainingEvents(t *testing.T) {
	s := New()
	fired := false
	s.At(5, func() { s.Stop() })
	s.At(50, func() { fired = true })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("event after Stop still dispatched")
	}
}

func TestKilledThreadNeverResumes(t *testing.T) {
	s := New()
	var victim *Thread
	resumed := false
	victim = s.Spawn("victim", func(th *Thread) {
		th.Delay(100)
		resumed = true
	})
	s.At(10, func() { s.Kill(victim) })
	// A survivor keeps the run alive well past the victim's resume time.
	s.Spawn("survivor", func(th *Thread) { th.Delay(500) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("killed thread resumed")
	}
	if s.Now() != 500 {
		t.Fatalf("ended at %d, want 500", s.Now())
	}
}

func TestKilledParkedThreadIgnoresUnpark(t *testing.T) {
	s := New()
	var victim *Thread
	woke := false
	victim = s.Spawn("victim", func(th *Thread) {
		th.Park()
		woke = true
	})
	s.At(10, func() {
		s.Kill(victim)
		victim.Unpark() // already scheduled wakeups must be ignored too
	})
	s.Spawn("survivor", func(th *Thread) { th.Delay(100) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke {
		t.Fatal("killed parked thread woke up")
	}
}

func TestKillCurrentThreadPanics(t *testing.T) {
	s := New()
	s.Spawn("self", func(th *Thread) {
		defer func() {
			if recover() == nil {
				t.Error("Kill of the running thread did not panic")
			}
		}()
		s.Kill(th)
	})
	// The panic is recovered inside the thread body; the run completes.
	_ = s.Run()
}

func TestKillIsIdempotentAndNilSafe(t *testing.T) {
	s := New()
	v := s.Spawn("v", func(th *Thread) { th.Delay(100) })
	s.At(1, func() {
		s.Kill(nil)
		s.Kill(v)
		s.Kill(v)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
