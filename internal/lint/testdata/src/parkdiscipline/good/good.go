// Package model exercises parkdiscipline's allowed shapes: unlocking before
// entering the engine, and goroutines that block on their own stack rather
// than under the spawner's lock.
package model

import (
	"sync"

	"svmsim/internal/lint/testdata/src/engine"
)

// Suite mirrors the harness shape.
type Suite struct {
	mu  sync.Mutex
	sim *engine.Sim
}

// runUnlocked releases the lock before entering the engine.
func (s *Suite) runUnlocked() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.sim.Run()
}

// spawnWorker's goroutine parks on its own stack; it does not inherit mu.
func (s *Suite) spawnWorker(t *engine.Thread) {
	s.mu.Lock()
	go func() {
		t.Park()
	}()
	s.mu.Unlock()
}
