package exp

import (
	"runtime"
	"sync"

	"svmsim"
)

// Cell is one (configuration, workload) simulation unit — the atom of every
// table and figure. Experiments enumerate their cells up front and hand them
// to a Runner, then assemble rows from the memoized results in their own
// deterministic order.
type Cell struct {
	Cfg svmsim.Config
	W   svmsim.Workload
}

// Key is the cell's content-address: the string that keys the in-memory
// memo, the persistent disk cache (as a sha256 digest) and the daemon's
// result store. Two cells with equal keys are the same simulation.
func (c Cell) Key() string { return c.W.Name + "|" + cfgKey(c.Cfg) }

// Runner executes a batch of cells on a bounded worker pool, deduplicating
// cells that share a key (within the batch, and — through the suite's
// singleflight cache — across concurrently running batches).
type Runner struct {
	// Suite provides the memo cache the results land in.
	Suite *Suite
	// Parallelism bounds the worker pool; zero or negative falls back to
	// Suite.Parallelism, then to GOMAXPROCS.
	Parallelism int
}

// Runner returns a runner bound to the suite's configured parallelism.
func (s *Suite) Runner() *Runner { return &Runner{Suite: s} }

// workers resolves the effective worker-pool size.
func (r *Runner) workers() int {
	n := r.Parallelism
	if n <= 0 {
		n = r.Suite.Parallelism
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes every cell, spreading unique cells over the worker pool and
// blocking until all are done. The result of each run lands in the suite's
// cache, so callers re-read them in any order they like afterwards. When
// several cells fail, the error reported is the earliest failing cell's in
// enumeration order, independent of completion order.
func (r *Runner) Run(cells []Cell) error {
	seen := make(map[string]bool, len(cells))
	unique := make([]Cell, 0, len(cells))
	for _, c := range cells {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		unique = append(unique, c)
	}

	n := r.workers()
	if n > len(unique) {
		n = len(unique)
	}
	if n <= 1 {
		// Same degraded-sweep semantics as the parallel path: every cell
		// runs (failures become cached error rows), and the error reported
		// is the first failing cell's in enumeration order.
		var first error
		for _, c := range unique {
			if _, err := r.Suite.run(c.Cfg, c.W); err != nil && first == nil {
				first = err
			}
		}
		return first
	}

	errs := make([]error, len(unique))
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			for idx := range work {
				_, errs[idx] = r.Suite.run(unique[idx].Cfg, unique[idx].W)
			}
		}()
	}
	for idx := range unique {
		work <- idx
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// uniCell is the uniprocessor-baseline cell for a workload (uniTime's unit).
func (s *Suite) uniCell(w svmsim.Workload) Cell {
	return Cell{Cfg: svmsim.Uniprocessor(s.Base()), W: w}
}

// prefetch runs a batch of cells through the suite's runner, populating the
// cache so the caller's serial table assembly is pure cache hits.
func (s *Suite) prefetch(cells []Cell) error {
	return s.Runner().Run(cells)
}
