package proto

import (
	"svmsim/internal/engine"
	"svmsim/internal/interrupts"
	"svmsim/internal/network"
	"svmsim/internal/node"
	"svmsim/internal/stats"
	"svmsim/internal/trace"
)

// Barriers are hierarchical, per the paper's SMP protocol: processors first
// synchronize within their node (hardware sharing); the last arriver closes
// the node's interval, flushes diffs, and exchanges one synchronous message
// pair with the barrier master (node 0). No interrupts are involved: the
// master's last arriver is blocked at the barrier and polls for arrival
// messages; the release is likewise deposited and polled.

type barrierArriveMsg struct {
	node int32
	// gen is the sender's barrier generation, so a master elected after a
	// crash can tell current arrivals from stragglers of earlier barriers.
	gen  uint64
	vc   []uint32
	recs []Notice
}

type barrierReleaseMsg struct {
	gen     uint64
	notices []Notice
	vc      []uint32
	// conservative marks a catch-up release whose write-notice history is no
	// longer replayable (truncated, or died with the old master): the
	// receiver must invalidate every valid remote-homed page instead.
	conservative bool
}

type barrierState struct {
	sys *System

	// participants is the number of application processors per node that
	// join barriers (one less than the node size when a processor is
	// reserved for protocol processing).
	participants int

	// master is the collecting node, 0 until a crash forces re-election
	// (recoverBarrier moves it to the lowest live node).
	master int

	// Per node: local arrival count, generation, and the wait condition.
	arrived []int
	gen     []uint64
	cond    []*engine.Cond

	// Master side: queued arrival payloads per source node.
	inbox      [][]barrierArriveMsg
	masterCond *engine.Cond

	// Per node: queued release payloads.
	releases [][]barrierReleaseMsg
	relCond  []*engine.Cond
}

func newBarrier(sy *System) *barrierState {
	n := len(sy.Nodes)
	participants := sy.Cfg.ProcsPerNode
	if sy.Cfg.Requests == interrupts.Dedicated && participants > 1 {
		participants--
	}
	b := &barrierState{
		sys:          sy,
		participants: participants,
		arrived:      make([]int, n),
		gen:          make([]uint64, n),
		cond:         make([]*engine.Cond, n),
		inbox:        make([][]barrierArriveMsg, n),
		masterCond:   engine.NewCond(sy.Sim),
		releases:     make([][]barrierReleaseMsg, n),
		relCond:      make([]*engine.Cond, n),
	}
	for i := 0; i < n; i++ {
		b.cond[i] = engine.NewCond(sy.Sim)
		b.relCond[i] = engine.NewCond(sy.Sim)
	}
	return b
}

// Barrier blocks p until every processor in the cluster has arrived.
func (sy *System) Barrier(t *engine.Thread, p *node.Processor) {
	b := sy.bar
	ns := sy.ns[p.Node.ID]
	nid := ns.id
	p.Sync(t)
	start := sy.Sim.Now()
	sy.Trace.Emit(start, int32(p.GlobalID), trace.BarrierEnter, 0, 0)
	p.Stats.Barriers++
	p.Charge(t, sy.Prm.LocalBarrierCycles, stats.BarrierWait)
	p.Sync(t)

	b.arrived[nid]++
	myGen := b.gen[nid]
	if b.arrived[nid] < b.participants {
		// Not last in the node: wait for the node-level release.
		for b.gen[nid] == myGen {
			p.Where = "barrier-local-wait"
			b.cond[nid].Wait(t)
			p.BlockedWake(t)
		}
		p.Where = ""
		p.Stats.Time[stats.BarrierWait] += sy.Sim.Now() - start
		sy.Trace.Emit(sy.Sim.Now(), int32(p.GlobalID), trace.BarrierExit, 0, 0)
		return
	}

	// Last arriver in the node: close the interval (release semantics).
	ns.closeInterval(t, p, false)

	if nid == b.master {
		sy.barrierMaster(t, p, ns)
	} else {
		sy.barrierLeaf(t, p, ns)
	}

	// Release the node's processors into the next phase.
	b.arrived[nid] = 0
	b.gen[nid]++
	b.cond[nid].Broadcast()
	p.Stats.Time[stats.BarrierWait] += sy.Sim.Now() - start
	sy.Trace.Emit(sy.Sim.Now(), int32(p.GlobalID), trace.BarrierExit, 0, 0)
}

// barrierLeaf sends this node's arrival to the master and waits for the
// release, applying the notices it carries. After a crash the master can
// change mid-wait: the recovery round wakes every sleeper, and the leaf
// either re-sends its arrival to the new master or — if promoted — takes
// over collection itself.
func (sy *System) barrierLeaf(t *engine.Thread, p *node.Processor, ns *nodeState) {
	b := sy.bar
	myGen := b.gen[ns.id]
	sentTo := -1
	for {
		if b.master == ns.id {
			sy.barrierMaster(t, p, ns)
			return
		}
		if sentTo != b.master {
			sentTo = b.master
			recs := ns.noticesSince(ns.lastBarrierVC)
			vc := append([]uint32(nil), ns.vc...)
			sy.send(t, &network.Message{
				Kind:    network.BarrierArrive,
				Src:     ns.id,
				Dst:     sentTo,
				SrcProc: p.GlobalID,
				Size:    sy.Prm.CtlBytes + 4*len(vc) + sy.noticesWireBytes(recs),
				Payload: barrierArriveMsg{node: int32(ns.id), gen: myGen, vc: vc, recs: recs},
			}, p, true, true)
			continue // the release (or a master change) may have landed during the send
		}
		// Discard releases of generations this node already completed
		// (duplicates from a master change).
		for len(b.releases[ns.id]) > 0 && b.releases[ns.id][0].gen < myGen {
			b.releases[ns.id] = b.releases[ns.id][1:]
		}
		if len(b.releases[ns.id]) > 0 {
			break
		}
		p.Where = "barrier-release-wait"
		b.relCond[ns.id].Wait(t)
		p.BlockedWake(t)
	}
	p.Where = ""
	rel := b.releases[ns.id][0]
	b.releases[ns.id] = b.releases[ns.id][1:]
	if rel.conservative {
		ns.invalidateAllRemote(t, p)
	}
	ns.applyNotices(t, p, false, rel.notices, rel.vc)
	p.Sync(t)
	copy(ns.lastBarrierVC, ns.vc)
	ns.truncateLog()
}

// barrierMaster gathers every live node's arrival, merges notices and clocks,
// and sends each node a tailored release. A master elected after a crash may
// find stragglers of older generations in the inbox (their release died with
// the old master) — they are caught up conservatively — or arrivals of a
// NEWER generation, proof that the old master completed this barrier
// cluster-wide before dying, in which case the new master catches itself up
// instead of collecting.
func (sy *System) barrierMaster(t *engine.Thread, p *node.Processor, ns *nodeState) {
	b := sy.bar
	n := len(sy.Nodes)
	g := b.gen[ns.id]
	for {
		ready := true
		ahead := -1
		for i := 0; i < n; i++ {
			if i == ns.id || !sy.alive(i) {
				continue
			}
			for len(b.inbox[i]) > 0 && b.inbox[i][0].gen < g {
				arr := b.inbox[i][0]
				b.inbox[i] = b.inbox[i][1:]
				sy.masterRelease(t, p, ns, arr, true)
			}
			if len(b.inbox[i]) == 0 {
				ready = false
				continue
			}
			if b.inbox[i][0].gen > g {
				ahead = i
			}
		}
		if ahead >= 0 {
			sy.masterCatchUp(t, p, ns, ahead, g)
			return
		}
		if ready {
			break
		}
		p.Where = "barrier-master-wait"
		b.masterCond.Wait(t)
		p.BlockedWake(t)
	}
	arr := make([]barrierArriveMsg, n)
	for i := 0; i < n; i++ {
		if i == ns.id || !sy.alive(i) {
			continue
		}
		arr[i] = b.inbox[i][0]
		b.inbox[i] = b.inbox[i][1:]
	}
	// Merge every node's notices into the master's state (in node order for
	// determinism), invalidating the master's stale pages.
	for i := 0; i < n; i++ {
		if i == ns.id || !sy.alive(i) {
			continue
		}
		ns.applyNotices(t, p, false, arr[i].recs, arr[i].vc)
	}
	p.Sync(t)
	// Release each node with the notices it lacks.
	for i := 0; i < n; i++ {
		if i == ns.id || !sy.alive(i) {
			continue
		}
		sy.masterRelease(t, p, ns, arr[i], false)
	}
	copy(ns.lastBarrierVC, ns.vc)
	ns.truncateLog()
}

// masterRelease sends one node its barrier release. A catch-up release (for a
// straggler of an older generation) is conservative when the write notices
// the straggler needs predate the master's log horizon and cannot be
// replayed.
func (sy *System) masterRelease(t *engine.Thread, p *node.Processor, ns *nodeState, arr barrierArriveMsg, catchUp bool) {
	conservative := false
	if catchUp {
		for o, v := range arr.vc {
			if v < ns.logBase[o] {
				conservative = true
				break
			}
		}
	}
	recs := ns.noticesSince(arr.vc)
	if conservative {
		recs = nil
	}
	vc := append([]uint32(nil), ns.vc...)
	sy.send(t, &network.Message{
		Kind:    network.BarrierRelease,
		Src:     ns.id,
		Dst:     int(arr.node),
		SrcProc: p.GlobalID,
		Size:    sy.Prm.CtlBytes + 4*len(vc) + sy.noticesWireBytes(recs),
		Payload: barrierReleaseMsg{gen: arr.gen, notices: recs, vc: vc, conservative: conservative},
	}, p, true, true)
}

// masterCatchUp handles a new master discovering that the old master already
// completed its current barrier generation cluster-wide before dying: an
// arrival of a newer generation is queued. The new master adopts the ahead
// leaf's merged clock conservatively, releases any same-generation
// stragglers, and leaves the newer arrivals queued for its own next barrier.
func (sy *System) masterCatchUp(t *engine.Thread, p *node.Processor, ns *nodeState, ahead int, g uint64) {
	b := sy.bar
	aheadVC := append([]uint32(nil), b.inbox[ahead][0].vc...)
	ns.invalidateAllRemote(t, p)
	ns.applyNotices(t, p, false, nil, aheadVC)
	p.Sync(t)
	copy(ns.lastBarrierVC, ns.vc)
	ns.truncateLog()
	for i := 0; i < len(sy.Nodes); i++ {
		if i == ns.id || !sy.alive(i) {
			continue
		}
		for len(b.inbox[i]) > 0 && b.inbox[i][0].gen <= g {
			arr := b.inbox[i][0]
			b.inbox[i] = b.inbox[i][1:]
			sy.masterRelease(t, p, ns, arr, true)
		}
	}
}

// handleArrive queues a node's arrival at the master (NI deposit). An
// arrival already queued for the same generation is a duplicate (the leaf
// re-sent it after a master change landed at the old address too).
func (b *barrierState) handleArrive(m *network.Message) {
	a := m.Payload.(barrierArriveMsg)
	for _, q := range b.inbox[a.node] {
		if q.gen == a.gen {
			return
		}
	}
	b.inbox[a.node] = append(b.inbox[a.node], a)
	b.masterCond.Broadcast()
}

// handleRelease queues a release at a leaf node (NI deposit).
func (b *barrierState) handleRelease(m *network.Message) {
	r := m.Payload.(barrierReleaseMsg)
	b.releases[m.Dst] = append(b.releases[m.Dst], r)
	b.relCond[m.Dst].Broadcast()
}
