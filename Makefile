# Development checks for svmsim. `make check` is the CI gate: vet, the
# domain-specific svmlint analyzers (determinism / unit-suffix / hot-path
# allocation invariants, see internal/lint), build, the full test suite, and
# the race detector over the packages with real concurrency (the parallel
# experiment Runner and the engine).

GO ?= go

.PHONY: check vet lint lint-baseline lint-report build test race chaos serve-smoke chaos-serve fleet-smoke twin-validate bench bench-engine bench-smoke bench-snapshot experiments faults

check: vet lint build test race chaos serve-smoke chaos-serve fleet-smoke twin-validate

vet:
	$(GO) vet ./...

# svmlint gates the simulator's non-negotiable invariants; `gofmt -l` rides
# along so formatting drift fails the same target. Findings recorded in
# lint.baseline.json are accepted debt and do not fail the run — only new
# findings do. Run `go run ./cmd/svmlint -analyzers` for the catalogue.
lint:
	$(GO) run ./cmd/svmlint -baseline lint.baseline.json ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint-baseline recaptures the accepted-findings baseline. Use after
# deliberately accepting a finding; shrink the file whenever possible.
lint-baseline:
	$(GO) run ./cmd/svmlint -baseline lint.baseline.json -write-baseline ./...

# lint-report writes the full machine-readable finding list (including
# suppressed and baselined entries) for CI artifact upload; it never fails.
lint-report:
	-$(GO) run ./cmd/svmlint -json -v -baseline lint.baseline.json ./... > svmlint-report.json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race set covers the packages with real concurrency (the parallel
# experiment Runner, the engine, the serving daemon's worker pool and
# watchdog, the fleet coordinator's dispatch/heartbeat machinery) plus the
# fault-recovery machinery whose livelock regressions must fail fast instead
# of hanging.
race:
	$(GO) test -race -timeout 10m ./internal/exp/... ./internal/engine/... ./internal/network/... ./internal/proto/... ./internal/server/... ./internal/fleet/...

# Crash-stop smoke: the node-crash sweep on a small topology under the race
# detector — heartbeat detection, recovery and degraded-mode completion end
# to end, in well under a minute.
chaos:
	$(GO) run -race ./cmd/experiments -only nodecrash -procs 4 -ppn 2

# Daemon smoke: build svmsimd, serve one cell over HTTP, verify the metrics
# counters move and a warm resubmission is a zero-simulation store hit, then
# SIGTERM and require a clean drain. Seconds end to end.
serve-smoke:
	sh scripts/serve_smoke.sh

# Daemon crash safety: SIGKILL svmsimd mid-sweep, restart it on the same
# journal and cache, and require the replayed job to finish byte-identical to
# an uninterrupted run with no cached cell simulated twice. Seconds end to
# end; set CHAOS_ARTIFACT_DIR to preserve the journal and logs on failure.
chaos-serve:
	sh scripts/chaos_serve.sh

# Fleet crash safety: coordinator + two joined workers, SIGKILL one worker
# mid-sweep, require a byte-identical sweep with exactly one counted death,
# the dead worker's cells re-dispatched and zero local fallbacks. Seconds end
# to end; CHAOS_ARTIFACT_DIR preserves logs on failure, as for chaos-serve.
fleet-smoke:
	sh scripts/chaos_serve.sh fleet

# Analytical-twin smoke: run the interrupt sweep with and without
# -twin-prune, require a strictly smaller simulation count with the
# reduction logged, the predicted cells marked in the document, and every
# pruned-table value within 15% of the fully simulated one. A couple of
# minutes end to end.
twin-validate:
	sh scripts/twin_validate.sh

# Single-run and suite-level throughput benchmarks (before/after numbers for
# EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSingleRun|BenchmarkSuite' -benchmem .

# Engine hot-path allocation guardrails.
bench-engine:
	$(GO) test -run '^$$' -bench 'BenchmarkEngine' -benchmem ./internal/engine/

# CI benchmark smoke: one -benchtime=1x pass asserting the engine's
# 0 allocs/op contract plus one end-to-end single-run. Seconds.
bench-smoke:
	sh scripts/bench_smoke.sh

# Record the perf trajectory: best-of-N engine, table and twin benchmark
# numbers written to BENCH_PR10.json (checked in; see
# scripts/bench_snapshot.sh).
bench-snapshot:
	sh scripts/bench_snapshot.sh BENCH_PR10.json

# Regenerate every table and figure of the paper (small sizes, parallel).
experiments:
	$(GO) run ./cmd/experiments

# Fault-injection smoke: the drop-rate sweep on a small topology. Finishes in
# seconds and exercises the reliable-delivery layer end to end.
faults:
	$(GO) run ./cmd/experiments -only droprate -procs 4 -ppn 2
