package radix

import (
	"testing"

	"svmsim/internal/apps/apptest"
	"svmsim/internal/machine"
	"svmsim/internal/stats"
)

func TestRadix(t *testing.T) {
	apptest.Exercise(t, New(Small()))
}

func TestRadixScattersWrites(t *testing.T) {
	res, err := machine.Run(apptest.SmallConfig(), New(Small()))
	if err != nil {
		t.Fatal(err)
	}
	// The permutation phase writes remotely allocated pages: diffs (or
	// fetches) must be plentiful relative to barriers.
	diffs := res.Run.Sum(func(p *stats.Proc) uint64 { return p.DiffsCreated })
	if diffs == 0 {
		t.Fatal("radix permutation produced no diffs")
	}
}
