package proto

import (
	"fmt"
	"testing"
	"testing/quick"

	"svmsim/internal/engine"
	"svmsim/internal/interrupts"
	"svmsim/internal/network"
	"svmsim/internal/node"
)

// newTestSystem builds a bare System (no machine harness) for white-box
// protocol tests.
func newTestSystem(nodes, ppn int) (*engine.Sim, *System) {
	sim := engine.New()
	netPrm := network.Params{
		HostOverheadCycles: 100,
		NIOccupancyCycles:  100,
		IOBytesPerCycle:    1.0,
		LinkBytesPerCycle:  2.0,
		LinkLatencyCycles:  20,
		MaxPacketBytes:     2048,
		HeaderBytes:        32,
	}
	sy := NewSystem(sim, SystemConfig{
		Nodes:             nodes,
		ProcsPerNode:      ppn,
		HeapBytes:         1 << 20,
		NodePrm:           node.DefaultParams(),
		NetPrm:            netPrm,
		ProtoPrm:          DefaultParams(),
		IntrIssueCycles:   100,
		IntrDeliverCycles: 100,
		IntrPolicy:        interrupts.Static,
	})
	return sim, sy
}

// checkLogCompleteness verifies the core HLRC bookkeeping invariant: each
// node's notice log for every origin contains exactly the contiguous
// intervals 1..vc[origin].
func checkLogCompleteness(sy *System) error {
	for n, ns := range sy.ns {
		for o := range ns.log {
			base := ns.logBase[o]
			want := ns.vc[o] - base
			if uint32(len(ns.log[o])) != want {
				return fmt.Errorf("node %d: log[%d] has %d recs, vc=%d base=%d", n, o, len(ns.log[o]), ns.vc[o], base)
			}
			for i, rec := range ns.log[o] {
				if rec.Interval != base+uint32(i+1) {
					return fmt.Errorf("node %d: log[%d][%d] has interval %d (base %d)", n, o, i, rec.Interval, base)
				}
				if int(rec.Origin) != o {
					return fmt.Errorf("node %d: log[%d][%d] has origin %d", n, o, i, rec.Origin)
				}
			}
		}
	}
	return nil
}

// checkTokenUniqueness verifies that each lock's token exists at exactly one
// node (or is in flight: then zero holders but someone requested).
func checkTokenUniqueness(sy *System) error {
	for id := range sy.locks {
		holders := 0
		for _, ns := range sy.ns {
			if ns.locks[id].haveToken {
				holders++
			}
		}
		if holders > 1 {
			return fmt.Errorf("lock %d held by %d nodes", id, holders)
		}
	}
	return nil
}

// checkTwinDiscipline verifies twins exist exactly for writable non-home
// HLRC pages.
func checkTwinDiscipline(sy *System) error {
	if sy.Prm.Mode != HLRC {
		return nil
	}
	for n, ns := range sy.ns {
		for pg, st := range ns.state {
			_, hasTwin := ns.twins[int32(pg)]
			isHome := int(sy.pageHome[pg]) == n
			wantTwin := st == pgWritable && !isHome && sy.pageHome[pg] >= 0
			if wantTwin != hasTwin {
				return fmt.Errorf("node %d page %d: state=%d home=%v twin=%v", n, pg, st, isHome, hasTwin)
			}
		}
	}
	return nil
}

// TestProtocolInvariantsUnderRandomOps drives random shared-memory traffic
// (writes, reads, locks, barriers) directly against the protocol and checks
// the bookkeeping invariants at every barrier and at the end.
func TestProtocolInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed uint32) bool {
		sim, sy := newTestSystem(4, 2)
		base := sy.AllocPages(64 << 10)
		var lockIDs []int
		for i := 0; i < 4; i++ {
			lockIDs = append(lockIDs, sy.NewLock())
		}
		fail := make(chan error, 16)
		for i := 0; i < 8; i++ {
			p := sy.Procs[i]
			rng := uint64(seed)*2654435761 + uint64(i)*0x9e3779b9 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				return int(rng % uint64(n))
			}
			sim.Spawn(fmt.Sprintf("proc%d", i), func(th *engine.Thread) {
				p.Bind(th, nil)
				for op := 0; op < 120; op++ {
					addr := base + uint64(next(8192))*8
					switch next(5) {
					case 0, 1:
						sy.ReadWord(th, p, addr)
					case 2:
						l := lockIDs[next(len(lockIDs))]
						sy.Acquire(th, p, l)
						sy.WriteWord(th, p, addr, rng)
						sy.Release(th, p, l)
					case 3:
						sy.WriteWord(th, p, addr, rng)
					case 4:
						sy.Barrier(th, p)
						if p.LocalID == 0 {
							if err := checkTokenUniqueness(sy); err != nil {
								fail <- err
							}
						}
					}
				}
				// Everyone must meet the same barrier count: pad with
				// barriers deterministically derived from op choices is
				// impossible here, so synchronize explicitly below.
				_ = fail
			})
		}
		if err := sim.Run(); err != nil {
			// Mismatched barrier counts across processors deadlock; that is
			// an artifact of the random op streams, not a protocol bug.
			if _, ok := err.(*engine.DeadlockError); ok {
				return true
			}
			t.Log(err)
			return false
		}
		select {
		case err := <-fail:
			t.Log(err)
			return false
		default:
		}
		if err := checkLogCompleteness(sy); err != nil {
			t.Log(err)
			return false
		}
		if err := checkTwinDiscipline(sy); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestNoticeLogAppendOrder checks appendLog keeps per-origin logs sorted and
// deduplicated under arbitrary insertion orders.
func TestNoticeLogAppendOrder(t *testing.T) {
	f := func(raw []uint8) bool {
		_, sy := newTestSystem(2, 1)
		ns := sy.ns[0]
		seen := map[uint32]bool{}
		for _, r := range raw {
			iv := uint32(r%30) + 1
			ns.appendLog(Notice{Origin: 1, Interval: iv, Pages: []int32{int32(iv)}})
			seen[iv] = true
		}
		l := ns.log[1]
		if len(l) != len(seen) {
			return false
		}
		for i := 1; i < len(l); i++ {
			if l[i-1].Interval >= l[i].Interval {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestNoticesSinceCut checks noticesSince returns exactly the records above
// the cut for each origin.
func TestNoticesSinceCut(t *testing.T) {
	_, sy := newTestSystem(3, 1)
	ns := sy.ns[0]
	for o := int32(0); o < 3; o++ {
		for iv := uint32(1); iv <= 5; iv++ {
			ns.appendLog(Notice{Origin: o, Interval: iv, Pages: []int32{int32(iv)}})
		}
	}
	got := ns.noticesSince([]uint32{2, 5, 0})
	// Expect origins 0:(3,4,5), 1:(), 2:(1..5) => 8 records.
	if len(got) != 8 {
		t.Fatalf("got %d notices, want 8", len(got))
	}
	for _, rec := range got {
		lowCut := []uint32{2, 5, 0}[rec.Origin]
		if rec.Interval <= lowCut {
			t.Fatalf("notice origin %d interval %d below cut %d", rec.Origin, rec.Interval, lowCut)
		}
	}
}

// TestFirstTouchHomesAtToucher verifies the home policy.
func TestFirstTouchHomesAtToucher(t *testing.T) {
	sim, sy := newTestSystem(4, 1)
	base := sy.AllocPages(4 * uint64(sy.Prm.PageBytes))
	for i := 0; i < 4; i++ {
		p := sy.Procs[i]
		addr := base + uint64(i)*uint64(sy.Prm.PageBytes)
		sim.Spawn(fmt.Sprintf("p%d", i), func(th *engine.Thread) {
			p.Bind(th, nil)
			sy.WriteWord(th, p, addr, uint64(i))
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		pg := sy.PageOf(base + uint64(i)*uint64(sy.Prm.PageBytes))
		if home := sy.Home(pg); home != int32(i) {
			t.Errorf("page %d homed at %d, want %d", pg, home, i)
		}
	}
}

// TestWireSizeAccounting checks that notice payload sizing is consistent
// with the notices carried.
func TestWireSizeAccounting(t *testing.T) {
	_, sy := newTestSystem(2, 1)
	recs := []Notice{
		{Origin: 0, Interval: 1, Pages: []int32{1, 2, 3}},
		{Origin: 1, Interval: 4, Pages: []int32{9}},
	}
	got := sy.noticesWireBytes(recs)
	want := 2*sy.Prm.NoticeBytes + 4*4
	if got != want {
		t.Fatalf("noticesWireBytes=%d want %d", got, want)
	}
}

// TestLogTruncationAtBarriers checks that the notice logs shrink at
// barriers: after many write+barrier phases, no node retains more than the
// records since the last barrier.
func TestLogTruncationAtBarriers(t *testing.T) {
	sim, sy := newTestSystem(4, 2)
	base := sy.AllocPages(256 << 10)
	const phases = 12
	for i := 0; i < 8; i++ {
		p := sy.Procs[i]
		id := i
		sim.Spawn(fmt.Sprintf("proc%d", id), func(th *engine.Thread) {
			p.Bind(th, nil)
			for ph := 0; ph < phases; ph++ {
				// Everyone writes its own region (interval per phase).
				for k := 0; k < 64; k++ {
					sy.WriteWord(th, p, base+uint64((id*4096+ph*64+k)*8), uint64(ph))
				}
				sy.Barrier(th, p)
			}
		})
	}
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for n, ns := range sy.ns {
		for o := range ns.log {
			if len(ns.log[o]) > 2 {
				t.Errorf("node %d retains %d records for origin %d after truncation", n, len(ns.log[o]), o)
			}
			if ns.logBase[o] == 0 && ns.vc[o] > 2 {
				t.Errorf("node %d never truncated origin %d (vc=%d)", n, o, ns.vc[o])
			}
		}
	}
	if err := checkLogCompleteness(sy); err != nil {
		t.Fatal(err)
	}
}
