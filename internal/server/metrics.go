package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"svmsim/internal/exp"
)

// metrics is the daemon's Prometheus registry, stdlib only: a handful of
// counters and gauges plus one latency histogram, rendered in the Prometheus
// text exposition format by render. Everything is guarded by one mutex —
// the daemon's request rates are nowhere near the point where a sharded
// registry would matter, and one lock keeps scrapes consistent.
type metrics struct {
	mu sync.Mutex

	jobsAccepted map[string]uint64 // by kind: cell, sweep
	jobsDone     uint64
	jobsFailed   uint64
	jobsRejected uint64 // 429s: queue full
	jobsRefused  uint64 // 503s: draining

	jobsDeduped     uint64 // resubmissions coalesced onto an active job
	jobsReplayed    uint64 // jobs re-enqueued from the journal at startup
	jobTimeouts     uint64 // attempts cut short by the watchdog deadline
	jobRetries      uint64 // timed-out attempts given another try
	jobsQuarantined uint64 // jobs parked after exhausting their attempts

	cacheHits   map[string]uint64 // by layer: store, memo, flight, disk
	cacheMisses uint64
	cellsSim    uint64

	latency histogram

	// twinPredictions counts /v1/twin/* answers served from the analytical
	// model; twinCalibrations, when non-nil (twin endpoints enabled), reads
	// the twin's calibration-pass counter live at scrape time.
	twinPredictions  uint64
	twinCalibrations func() uint64

	// Gauges are read live at scrape time.
	queueDepth func() int
	inflight   func() int
}

func newMetrics(queueDepth, inflight func() int) *metrics {
	return &metrics{
		jobsAccepted: make(map[string]uint64),
		cacheHits:    make(map[string]uint64),
		latency:      newHistogram(),
		queueDepth:   queueDepth,
		inflight:     inflight,
	}
}

func (m *metrics) accepted(kind string) {
	m.mu.Lock()
	m.jobsAccepted[kind]++
	m.mu.Unlock()
}

func (m *metrics) finished(failed bool) {
	m.mu.Lock()
	if failed {
		m.jobsFailed++
	} else {
		m.jobsDone++
	}
	m.mu.Unlock()
}

func (m *metrics) rejected() {
	m.mu.Lock()
	m.jobsRejected++
	m.mu.Unlock()
}

func (m *metrics) refused() {
	m.mu.Lock()
	m.jobsRefused++
	m.mu.Unlock()
}

func (m *metrics) twinPredicted() {
	m.mu.Lock()
	m.twinPredictions++
	m.mu.Unlock()
}

func (m *metrics) storeHit() {
	m.mu.Lock()
	m.cacheHits["store"]++
	m.mu.Unlock()
}

func (m *metrics) deduped() {
	m.mu.Lock()
	m.jobsDeduped++
	m.mu.Unlock()
}

func (m *metrics) replayed(n int) {
	m.mu.Lock()
	m.jobsReplayed += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) timedOut() {
	m.mu.Lock()
	m.jobTimeouts++
	m.mu.Unlock()
}

func (m *metrics) retried() {
	m.mu.Lock()
	m.jobRetries++
	m.mu.Unlock()
}

func (m *metrics) quarantined() {
	m.mu.Lock()
	m.jobsQuarantined++
	m.mu.Unlock()
}

// observe is the exp.Suite observability hook: every cell served by the
// suite lands here, classifying cache layers and feeding the latency
// histogram for fresh simulations.
func (m *metrics) observe(ev exp.CellEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch ev.Source {
	case exp.SourceSim:
		m.cacheMisses++
		m.cellsSim++
		m.latency.observe(ev.Seconds)
	default:
		m.cacheHits[ev.Source.String()]++
	}
}

// snapshotCounter reads one named counter (test and smoke-script helper).
func (m *metrics) cellsSimulated() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cellsSim
}

// render writes the registry in the Prometheus text exposition format.
// Label sets are emitted in sorted order so scrapes are deterministic.
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	gauge := func(name, help string, v int) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	labeled := func(name, help, label string, vals map[string]uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{%s=%q} %d\n", name, label, k, vals[k])
		}
	}

	gauge("svmsimd_queue_depth", "Jobs waiting in the admission queue.", m.queueDepth())
	gauge("svmsimd_jobs_inflight", "Jobs currently executing on the worker pool.", m.inflight())
	labeled("svmsimd_jobs_accepted_total", "Jobs admitted to the queue or served from the result store, by kind.", "kind", m.jobsAccepted)
	counter("svmsimd_jobs_done_total", "Jobs finished successfully.", m.jobsDone)
	counter("svmsimd_jobs_failed_total", "Jobs finished with a simulation error.", m.jobsFailed)
	counter("svmsimd_jobs_rejected_total", "Submissions rejected with 429 because the queue was full.", m.jobsRejected)
	counter("svmsimd_jobs_refused_total", "Submissions refused with 503 during drain.", m.jobsRefused)
	counter("svmsimd_jobs_deduped_total", "Resubmissions coalesced onto an already-active job with the same content key.", m.jobsDeduped)
	counter("svmsimd_jobs_replayed_total", "Incomplete jobs re-enqueued from the journal at startup.", m.jobsReplayed)
	counter("svmsimd_job_timeouts_total", "Execution attempts cut short by the watchdog deadline.", m.jobTimeouts)
	counter("svmsimd_job_retries_total", "Timed-out attempts retried with backoff.", m.jobRetries)
	counter("svmsimd_jobs_quarantined_total", "Jobs quarantined after exhausting their attempt budget.", m.jobsQuarantined)
	labeled("svmsimd_cache_hits_total", "Cells served without a fresh simulation, by cache layer.", "layer", m.cacheHits)
	counter("svmsimd_cache_misses_total", "Cells that required a fresh simulation.", m.cacheMisses)
	counter("svmsimd_cells_simulated_total", "Fresh simulations executed.", m.cellsSim)
	if m.twinCalibrations != nil {
		counter("svmsimd_twin_predictions_total", "Twin predict/optimize responses answered from the analytical model, bypassing the job queue.", m.twinPredictions)
		counter("svmsimd_twin_calibrations_total", "Calibration passes that built or extended a twin model.", m.twinCalibrations())
	}
	m.latency.writeTo(w, "svmsimd_cell_latency_seconds", "Wall-clock simulation time per freshly simulated cell.")
}

// histogram is a fixed-bucket Prometheus histogram (cumulative on render).
type histogram struct {
	bounds []float64 // upper bounds of each bucket, seconds
	counts []uint64  // non-cumulative per-bucket counts; len(bounds)+1 with +Inf last
	sum    float64
	count  uint64
}

func newHistogram() histogram {
	bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}
	return histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

func (h *histogram) writeTo(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.sum, 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count)
}
