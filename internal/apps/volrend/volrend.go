// Package volrend implements the paper's Volrend workload: front-to-back
// ray casting through a read-only 3-D volume (eight voxels packed per shared
// word), with scanline tasks distributed through stealing task queues and a
// better initial assignment of tasks to processors (the SVM optimization the
// paper mentions).
package volrend

import (
	"fmt"
	"math"

	"svmsim/internal/apps/appkit"
	"svmsim/internal/machine"
	"svmsim/internal/shm"
)

// Params sizes the problem.
type Params struct {
	Vol           int // volume side (voxels)
	Width, Height int
	StepsPerRay   int
	SampleCycles  uint64
}

// Small returns a test-sized problem.
func Small() Params { return Params{Vol: 32, Width: 64, Height: 64, StepsPerRay: 40, SampleCycles: 80} }

// Default returns the benchmark-sized problem.
func Default() Params {
	return Params{Vol: 64, Width: 96, Height: 96, StepsPerRay: 60, SampleCycles: 80}
}

type state struct {
	p      Params
	vol    appkit.Vec // packed: 8 voxels (bytes) per word
	img    appkit.Vec
	queues *appkit.TaskQueues
	want   []float64
}

// New builds the application.
func New(p Params) machine.App {
	return machine.App{
		Name:  "Volrend",
		Setup: func(w *shm.World) any { return setup(w, p) },
		Body:  body,
		Check: check,
	}
}

// density is the synthetic volume function (two blobs plus a shell).
func density(p Params, x, y, z int) uint8 {
	fx := float64(x)/float64(p.Vol)*2 - 1
	fy := float64(y)/float64(p.Vol)*2 - 1
	fz := float64(z)/float64(p.Vol)*2 - 1
	d1 := math.Exp(-8 * ((fx-0.3)*(fx-0.3) + fy*fy + fz*fz))
	d2 := math.Exp(-10 * (fx*fx + (fy+0.4)*(fy+0.4) + (fz-0.2)*(fz-0.2)))
	r := math.Sqrt(fx*fx + fy*fy + fz*fz)
	shell := math.Exp(-40 * (r - 0.8) * (r - 0.8))
	v := 255 * math.Min(1, d1+d2+0.5*shell)
	return uint8(v)
}

func setup(w *shm.World, p Params) *state {
	s := &state{p: p}
	words := p.Vol * p.Vol * p.Vol / 8
	s.vol = appkit.AllocVecPages(w, words)
	appkit.BlockHome(w, s.vol, words)
	s.img = appkit.AllocVecPages(w, p.Width*p.Height)
	s.queues = appkit.NewTaskQueues(w, w.Procs(), p.Height+4)
	// Reference render.
	s.want = make([]float64, p.Width*p.Height)
	sample := func(x, y, z int) uint8 { return density(p, x, y, z) }
	for y := 0; y < p.Height; y++ {
		for x := 0; x < p.Width; x++ {
			s.want[y*p.Width+x] = castRay(p, x, y, func(vx, vy, vz int) uint8 { return sample(vx, vy, vz) })
		}
	}
	return s
}

// voxelWordIndex maps voxel coordinates to (word, byte) in the packed
// volume.
func voxelWordIndex(p Params, x, y, z int) (word, byteOff int) {
	lin := (z*p.Vol+y)*p.Vol + x
	return lin / 8, lin % 8
}

// castRay integrates density front-to-back along an orthographic ray.
func castRay(p Params, px, py int, sample func(x, y, z int) uint8) float64 {
	// Orthographic rays along +z through pixel (px, py) scaled to volume.
	fx := float64(px) / float64(p.Width) * float64(p.Vol-1)
	fy := float64(py) / float64(p.Height) * float64(p.Vol-1)
	var acc, transp float64 = 0, 1
	dz := float64(p.Vol-1) / float64(p.StepsPerRay)
	for step := 0; step < p.StepsPerRay; step++ {
		z := float64(step) * dz
		v := float64(sample(int(fx), int(fy), int(z))) / 255
		alpha := v * 0.12
		acc += transp * alpha * v
		transp *= 1 - alpha
		if transp < 0.02 {
			break
		}
	}
	return acc
}

func body(c *shm.Proc, st any) {
	s := st.(*state)
	p := s.p
	// Parallel init of the packed volume by block (first-touch honors the
	// explicit block distribution).
	words := p.Vol * p.Vol * p.Vol / 8
	lo, hi := c.Block(words)
	for wIdx := lo; wIdx < hi; wIdx++ {
		var packed uint64
		for b := 0; b < 8; b++ {
			lin := wIdx*8 + b
			x := lin % p.Vol
			y := (lin / p.Vol) % p.Vol
			z := lin / (p.Vol * p.Vol)
			packed |= uint64(density(p, x, y, z)) << (8 * b)
		}
		s.vol.SetU(c, wIdx, packed)
	}
	// Better initial assignment: contiguous scanline blocks per processor.
	sLo, sHi := c.Block(p.Height)
	for y := sLo; y < sHi; y++ {
		s.queues.Push(c, c.ID, int64(y))
	}
	c.Barrier()

	sample := func(x, y, z int) uint8 {
		word, off := voxelWordIndex(p, x, y, z)
		v := s.vol.GetU(c, word)
		return uint8(v >> (8 * off))
	}
	for {
		task, ok := s.queues.Take(c, c.ID)
		if !ok {
			break
		}
		y := int(task)
		for x := 0; x < p.Width; x++ {
			s.img.SetF(c, y*p.Width+x, castRay(p, x, y, sample))
			c.Compute(uint64(p.StepsPerRay) * p.SampleCycles / 4)
		}
	}
	c.Barrier()
}

// check compares the shared image with the reference render.
func check(w *shm.World, st any) error {
	s := st.(*state)
	for i, want := range s.want {
		addr := s.img.At(i)
		home := w.Sys.Home(w.Sys.PageOf(addr))
		if home < 0 {
			return fmt.Errorf("volrend: pixel %d never written", i)
		}
		got := math.Float64frombits(w.Sys.Nodes[home].ReadWord(addr))
		if math.Abs(got-want) > 1e-9 {
			return fmt.Errorf("volrend: pixel %d = %g, want %g", i, got, want)
		}
	}
	return nil
}
