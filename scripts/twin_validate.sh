#!/bin/sh
# twin_validate.sh — end-to-end smoke test for twin-guided sweep pruning.
#
# Runs the same sweep twice — fully simulated and with -twin-prune — and
# requires: (1) the pruned run simulated strictly fewer cells, saying so in
# its reduction log; (2) the predicted cells are marked in the result
# document (twin.predicted_cells); (3) every speedup in the pruned table
# agrees with the fully simulated table within a 15% relative tolerance
# (the model's confidence gate is 5%; 15% leaves headroom for the CI being
# an estimate, not a bound).
#
# Run via `make twin-validate` (part of `make check`). POSIX sh + awk only.
set -eu

workdir=$(mktemp -d)
cleanup() { rm -rf "$workdir"; }
trap cleanup EXIT

fail() {
    echo "twin-validate: FAIL: $*" >&2
    for f in plain.log pruned.log; do
        [ -f "$workdir/$f" ] && { echo "--- $f ---" >&2; cat "$workdir/$f" >&2; }
    done
    exit 1
}

echo "twin-validate: building sweep" >&2
go build -o "$workdir/sweep" ./cmd/sweep

echo "twin-validate: full simulation (interrupt sweep, FFT+LU)" >&2
"$workdir/sweep" -param interrupt -apps FFT,LU -json \
    >"$workdir/plain.json" 2>"$workdir/plain.log" || fail "plain sweep failed"

echo "twin-validate: twin-pruned run of the same sweep" >&2
"$workdir/sweep" -param interrupt -apps FFT,LU -twin-prune -json \
    >"$workdir/pruned.json" 2>"$workdir/pruned.log" || fail "pruned sweep failed"

# (1) The reduction must be real and logged.
grep -q '^twin-prune: simulated .* fewer simulations$' "$workdir/pruned.log" \
    || fail "reduction log line missing from stderr"
predicted=$(sed -n 's/^ *"predicted": \([0-9][0-9]*\),*$/\1/p' "$workdir/pruned.json")
[ -n "$predicted" ] || fail "twin summary missing from the pruned document"
[ "$predicted" -gt 0 ] || fail "twin predicted 0 cells: nothing was pruned"

# (2) Predicted cells are marked by content key.
grep -q '"predicted_cells"' "$workdir/pruned.json" \
    || fail "predicted_cells missing from the pruned document"

# An unpruned document must NOT carry a twin summary (byte-compatibility).
grep -q '"twin"' "$workdir/plain.json" && fail "unpruned document grew a twin summary"

# (3) Same table shape, every value within 15% relative.
# Bare numeric array elements are exactly the table values (the twin
# summary's counters are keyed, predicted_cells are strings).
extract() { awk '/^[ \t]*-?[0-9][0-9.eE+-]*,?[ \t]*$/ { gsub(/[ \t,]/, ""); print }' "$1"; }
extract "$workdir/plain.json" > "$workdir/plain.vals"
extract "$workdir/pruned.json" > "$workdir/pruned.vals"
[ -s "$workdir/plain.vals" ] || fail "no values extracted from the plain document"

paste "$workdir/plain.vals" "$workdir/pruned.vals" | awk '
    NF != 2 { print "row " NR ": shape mismatch"; bad = 1; exit }
    {
        a = $1 + 0; b = $2 + 0
        d = a - b; if (d < 0) d = -d
        ref = a; if (ref < 0) ref = -ref; if (ref < 1e-9) ref = 1e-9
        if (d / ref > 0.15) { printf "value %d: simulated %g vs predicted %g (>15%%)\n", NR, a, b; bad = 1 }
    }
    END { exit bad }
' || fail "pruned table diverged from the simulated table"

n=$(wc -l < "$workdir/plain.vals" | tr -d ' ')
echo "twin-validate: OK — $n values within 15%, $predicted cells predicted instead of simulated" >&2
