package server

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"svmsim"
	"svmsim/internal/exp"
)

// testSuite builds a small, fast suite (4 procs, 2 per node).
func testSuite() *exp.Suite {
	s := exp.NewSuite(exp.Small)
	s.Procs = 4
	s.PPN = 2
	s.Parallelism = 1
	return s
}

// gateWorkload blocks its cell in Setup until gate closes — the test's lever
// for holding a worker busy deterministically.
func gateWorkload(name string, gate chan struct{}) svmsim.Workload {
	mk := func() svmsim.App {
		return svmsim.App{
			Name:  name,
			Setup: func(w *svmsim.World) any { <-gate; return nil },
			Body:  func(c *svmsim.Proc, state any) { c.Compute(100); c.Barrier() },
		}
	}
	return svmsim.Workload{Name: name, Small: mk, Default: mk}
}

func tinyWorkload(name string) svmsim.Workload {
	mk := func() svmsim.App {
		return svmsim.App{
			Name:  name,
			Setup: func(w *svmsim.World) any { return nil },
			Body:  func(c *svmsim.Proc, state any) { c.Compute(1000); c.Barrier() },
		}
	}
	return svmsim.Workload{Name: name, Small: mk, Default: mk}
}

func panicWorkload(name string) svmsim.Workload {
	mk := func() svmsim.App {
		return svmsim.App{
			Name:  name,
			Setup: func(w *svmsim.World) any { panic("boom: " + name) },
			Body:  func(c *svmsim.Proc, state any) {},
		}
	}
	return svmsim.Workload{Name: name, Small: mk, Default: mk}
}

// submitCell drives the admission path directly with a prepared cell,
// returning the recorded response.
func submitCell(s *Server, w svmsim.Workload) *httptest.ResponseRecorder {
	cell := exp.Cell{Cfg: s.suite.Base(), W: w}
	rec := httptest.NewRecorder()
	s.submit(rec, &job{kind: "cell", key: cell.Key(), cell: cell})
	return rec
}

func jobID(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var v jobView
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("parsing job view %q: %v", rec.Body.String(), err)
	}
	return v.ID
}

// waitInflight spins until the worker pool holds want jobs (the queue has
// been drained that far) or the deadline passes.
func waitInflight(t *testing.T, s *Server, want int) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if s.inflightCount() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("worker pool never reached %d in-flight jobs", want)
}

// waitTerminal blocks until a job finishes and returns its final view.
func waitTerminal(t *testing.T, s *Server, id string) jobView {
	t.Helper()
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		t.Fatalf("job %s lost from the index", id)
	}
	select {
	case <-j.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never finished", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return viewLocked(j)
}

// TestAdmissionControl: with one worker held busy and a one-slot queue, a
// third submission is rejected with 429 + Retry-After — and both accepted
// jobs still run to completion (no accepted job is ever lost).
func TestAdmissionControl(t *testing.T) {
	s, err := New(Config{Suite: testSuite(), Workers: 1, QueueDepth: 1, RetryAfterSeconds: 7})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	rec1 := submitCell(s, gateWorkload("gate", gate))
	if rec1.Code != 202 {
		t.Fatalf("first submit: %d %s", rec1.Code, rec1.Body)
	}
	waitInflight(t, s, 1)

	rec2 := submitCell(s, tinyWorkload("tiny"))
	if rec2.Code != 202 {
		t.Fatalf("queued submit: %d %s", rec2.Code, rec2.Body)
	}
	rec3 := submitCell(s, tinyWorkload("tiny-overflow"))
	if rec3.Code != 429 {
		t.Fatalf("overflow submit: %d %s", rec3.Code, rec3.Body)
	}
	if got := rec3.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want 7", got)
	}
	if !strings.Contains(rec3.Body.String(), `"queue_full"`) {
		t.Fatalf("429 body lacks structured kind: %s", rec3.Body)
	}

	close(gate)
	for _, rec := range []*httptest.ResponseRecorder{rec1, rec2} {
		if v := waitTerminal(t, s, jobID(t, rec)); v.Status != statusDone {
			t.Fatalf("accepted job ended as %+v", v)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStoreHitBypassesQueue: a result already in the content store is served
// immediately — even while the queue is full — with zero new simulations.
func TestStoreHitBypassesQueue(t *testing.T) {
	s, err := New(Config{Suite: testSuite(), Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	tiny := tinyWorkload("tiny")
	first := submitCell(s, tiny)
	if v := waitTerminal(t, s, jobID(t, first)); v.Status != statusDone {
		t.Fatalf("warming job: %+v", v)
	}
	simsBefore := s.metrics.cellsSimulated()

	gate := make(chan struct{})
	submitCell(s, gateWorkload("gate", gate))
	waitInflight(t, s, 1)
	submitCell(s, tinyWorkload("filler")) // occupies the only queue slot

	again := submitCell(s, tiny)
	if again.Code != 200 {
		t.Fatalf("store hit: %d %s", again.Code, again.Body)
	}
	var v jobView
	if err := json.Unmarshal(again.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if !v.Cached || v.Status != statusDone {
		t.Fatalf("store hit not marked cached: %+v", v)
	}
	if got := s.metrics.cellsSimulated(); got != simsBefore {
		t.Fatalf("warm resubmission simulated: %d -> %d", simsBefore, got)
	}
	close(gate)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrain: a draining server refuses new work with 503, finishes every
// accepted job (including still-queued ones), and reports a cut-short drain
// when the context expires first.
func TestDrain(t *testing.T) {
	s, err := New(Config{Suite: testSuite(), Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	rec1 := submitCell(s, gateWorkload("gate", gate))
	waitInflight(t, s, 1)
	rec2 := submitCell(s, tinyWorkload("tiny"))
	if rec2.Code != 202 {
		t.Fatalf("queued submit: %d", rec2.Code)
	}

	cut, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(cut); err == nil {
		t.Fatal("expired drain reported success with a job in flight")
	}

	refused := submitCell(s, tinyWorkload("late"))
	if refused.Code != 503 || !strings.Contains(refused.Body.String(), `"draining"`) {
		t.Fatalf("submission during drain: %d %s", refused.Code, refused.Body)
	}

	close(gate)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, rec := range []*httptest.ResponseRecorder{rec1, rec2} {
		if v := waitTerminal(t, s, jobID(t, rec)); v.Status != statusDone {
			t.Fatalf("job dropped by drain: %+v", v)
		}
	}
}

// TestFailedJobStructuredError: a failing cell ends as a failed job whose
// result endpoint serves the structured error envelope.
func TestFailedJobStructuredError(t *testing.T) {
	s, err := New(Config{Suite: testSuite(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := submitCell(s, panicWorkload("bomb"))
	v := waitTerminal(t, s, jobID(t, rec))
	if v.Status != statusFailed || v.ErrKind != "failed" {
		t.Fatalf("panic job: %+v", v)
	}

	res := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/jobs/"+v.ID+"/result?wait=1", nil)
	s.Handler().ServeHTTP(res, req)
	if res.Code != 500 {
		t.Fatalf("failed job result: %d %s", res.Code, res.Body)
	}
	var body errorBody
	if err := json.Unmarshal(res.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Kind != "failed" || !strings.Contains(body.Error.Message, "boom: bomb") {
		t.Fatalf("error envelope: %+v", body)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestJobEviction: the job index is bounded — old finished jobs are evicted
// while their results stay addressable through the content store.
func TestJobEviction(t *testing.T) {
	s, err := New(Config{Suite: testSuite(), Workers: 1, MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	var views []jobView
	for i := 0; i < 3; i++ {
		rec := submitCell(s, tinyWorkload("tiny-"+string(rune('a'+i))))
		views = append(views, waitTerminal(t, s, jobID(t, rec)))
	}
	s.mu.Lock()
	nJobs, nStore := len(s.jobs), len(s.store)
	_, oldest := s.jobs[views[0].ID]
	s.mu.Unlock()
	if nJobs != 2 || oldest {
		t.Fatalf("index not bounded: %d jobs, oldest present=%v", nJobs, oldest)
	}
	if nStore != 3 {
		t.Fatalf("store lost results on eviction: %d", nStore)
	}
	// The evicted job's cell is still a store hit.
	again := submitCell(s, tinyWorkload("tiny-a"))
	if again.Code != 200 {
		t.Fatalf("evicted job's result not served from store: %d", again.Code)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsRendering: the registry renders well-formed Prometheus text with
// the counters the smoke test greps for.
func TestMetricsRendering(t *testing.T) {
	s, err := New(Config{Suite: testSuite(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := submitCell(s, tinyWorkload("tiny"))
	waitTerminal(t, s, jobID(t, rec))
	submitCell(s, tinyWorkload("tiny")) // store hit

	res := httptest.NewRecorder()
	s.Handler().ServeHTTP(res, httptest.NewRequest("GET", "/metrics", nil))
	if res.Code != 200 {
		t.Fatalf("/metrics: %d", res.Code)
	}
	text := res.Body.String()
	for _, want := range []string{
		"svmsimd_queue_depth 0",
		"svmsimd_jobs_inflight 0",
		`svmsimd_jobs_accepted_total{kind="cell"} 2`,
		"svmsimd_jobs_done_total 1",
		`svmsimd_cache_hits_total{layer="store"} 1`,
		"svmsimd_cells_simulated_total 1",
		"svmsimd_cell_latency_seconds_count 1",
		`svmsimd_cell_latency_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
