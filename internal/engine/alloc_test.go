package engine

import (
	"runtime"
	"testing"
	"time"
)

// TestSchedulePathZeroAllocs pins the closure-free thread scheduling path to
// zero allocations per event once the queue has reached steady-state
// capacity: Delay/Unpark/Spawn dispatches are pure value pushes into recycled
// wheel buckets (or, past the wheel's window, the recycled overflow heap).
func TestSchedulePathZeroAllocs(t *testing.T) {
	s := New()
	th := &Thread{sim: s, name: "probe"}
	// Warm the overflow heap's backing storage; wheel buckets are slab-backed
	// from construction.
	for i := 0; i < 256; i++ {
		s.scheduleThread(Time(i)+2*wheelSize, th, evResume)
	}
	for s.events.size > 0 {
		s.events.pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		// One in-window push (bucket append) and one far-future push
		// (overflow heap), drained in order; the cursor marches forward so
		// every push respects the queue's monotonic-time contract.
		at := s.events.cur + 10
		s.scheduleThread(at, th, evResume)
		s.scheduleThread(at+wheelSize, th, evUnpark)
		s.events.pop()
		s.events.pop()
	})
	if allocs != 0 {
		t.Errorf("schedule path allocates %.1f objects per push/pop pair, want 0", allocs)
	}
}

// TestTeardownNoGoroutineLeak checks that tearing down simulations with
// parked threads unwinds their goroutines instead of leaking them.
func TestTeardownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	const sims = 20
	for i := 0; i < sims; i++ {
		s := New()
		for j := 0; j < 4; j++ {
			s.Spawn("parked", func(th *Thread) { th.Park() })
		}
		if err := s.Run(); err == nil {
			t.Fatal("want DeadlockError from all-parked sim")
		}
	}
	// Unwound goroutines exit asynchronously after teardown; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after teardown: before=%d after=%d", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkEngineDelay measures the full Delay round-trip (schedule, yield to
// scheduler, dispatch, resume). The allocation report is the guardrail: the
// schedule path must stay at 0 allocs/op.
func BenchmarkEngineDelay(b *testing.B) {
	b.ReportAllocs()
	s := New()
	n := b.N
	s.Spawn("delayer", func(th *Thread) {
		for i := 0; i < n; i++ {
			th.Delay(1)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkEngineUnpark measures a Park/Unpark ping-pong between two threads.
func BenchmarkEngineUnpark(b *testing.B) {
	b.ReportAllocs()
	s := New()
	n := b.N
	var ping, pong *Thread
	pong = s.Spawn("pong", func(th *Thread) {
		for i := 0; i < n; i++ {
			th.Park()
			ping.Unpark()
		}
	})
	ping = s.Spawn("ping", func(th *Thread) {
		for i := 0; i < n; i++ {
			pong.Unpark()
			th.Park()
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
