package interrupts

import (
	"testing"

	"svmsim/internal/engine"
	"svmsim/internal/node"
	"svmsim/internal/stats"
)

func mkNode(s *engine.Sim, nprocs int) *node.Node {
	prm := node.DefaultParams()
	prm.SyncQuantumCycles = 100
	return node.New(s, 0, nprocs, 1<<16, prm, 0)
}

func TestNullInterruptCost(t *testing.T) {
	s := engine.New()
	n := mkNode(s, 1)
	c := New(n, 500, 500, Static)
	var handled engine.Time
	s.At(0, func() {
		c.Raise("null", func(ht *engine.Thread, v *node.Processor) {
			handled = s.Now()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Issue 500 + delivery 500 = a 1000-cycle null interrupt.
	if handled != 1000 {
		t.Fatalf("null interrupt completed at %d, want 1000", handled)
	}
	if n.Procs[0].Stats.Interrupts != 1 {
		t.Fatalf("Interrupts=%d", n.Procs[0].Stats.Interrupts)
	}
}

func TestStaticDeliveryAlwaysProc0(t *testing.T) {
	s := engine.New()
	n := mkNode(s, 4)
	c := New(n, 0, 0, Static)
	victims := map[int]int{}
	for i := 0; i < 6; i++ {
		c.Raise("x", func(ht *engine.Thread, v *node.Processor) {
			victims[v.LocalID]++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if victims[0] != 6 || len(victims) != 1 {
		t.Fatalf("static delivery spread: %v", victims)
	}
}

func TestRoundRobinDeliveryRotates(t *testing.T) {
	s := engine.New()
	n := mkNode(s, 4)
	c := New(n, 0, 0, RoundRobin)
	victims := map[int]int{}
	for i := 0; i < 8; i++ {
		c.Raise("x", func(ht *engine.Thread, v *node.Processor) {
			victims[v.LocalID]++
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if victims[i] != 2 {
			t.Fatalf("round robin unbalanced: %v", victims)
		}
	}
}

func TestHandlersSerializeOnVictim(t *testing.T) {
	s := engine.New()
	n := mkNode(s, 1)
	c := New(n, 0, 100, Static)
	var ends []engine.Time
	for i := 0; i < 3; i++ {
		c.Raise("h", func(ht *engine.Thread, v *node.Processor) {
			ht.Delay(400)
			ends = append(ends, s.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []engine.Time{500, 1000, 1500}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("handler ends %v, want %v (serialization)", ends, want)
		}
	}
}

func TestHandlerStealChargedToApp(t *testing.T) {
	s := engine.New()
	n := mkNode(s, 1)
	c := New(n, 200, 300, Static)
	p := n.Procs[0]
	s.At(50, func() {
		c.Raise("steal", func(ht *engine.Thread, v *node.Processor) {
			ht.Delay(100)
		})
	})
	var end engine.Time
	s.Spawn("app", func(th *engine.Thread) {
		p.Bind(th, nil)
		p.Charge(th, 1000, stats.Compute)
		p.Sync(th)
		end = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Delivery (300) + handler body (100) are stolen; issue (200) is not.
	if end != 1400 {
		t.Fatalf("end=%d want 1400", end)
	}
	if got := p.Stats.Time[stats.HandlerSteal]; got != 400 {
		t.Fatalf("HandlerSteal=%d want 400", got)
	}
}
