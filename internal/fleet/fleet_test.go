package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"svmsim/internal/exp"
	"svmsim/internal/server"
	"svmsim/internal/walltime"
)

// waitUntil polls cond until it holds or the budget expires.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	sw := walltime.Start()
	for sw.Elapsed() < d {
		if cond() {
			return
		}
		walltime.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// --- registry ---

func TestRegistryLifecycle(t *testing.T) {
	r := newRegistry(50 * time.Millisecond)
	w1 := r.register("http://a:1", 2, "hostA:/cache")
	w2 := r.register("http://b:1", 1, "hostB:/cache")
	if w1.id == w2.id {
		t.Fatal("worker IDs collide")
	}
	if alive, _, _ := r.counts(); alive != 2 {
		t.Fatalf("alive = %d, want 2", alive)
	}
	if got := r.heartbeat(w1.id); got != hbOK {
		t.Fatalf("heartbeat verdict = %d, want hbOK", got)
	}
	if got := r.heartbeat("w999"); got != hbUnknown {
		t.Fatalf("unknown heartbeat verdict = %d, want hbUnknown", got)
	}

	// Graceful leave: counted once, down closed, later heartbeats say gone.
	if !r.leave(w2.id) {
		t.Fatal("leave of live worker refused")
	}
	if r.leave(w2.id) {
		t.Fatal("second leave of same worker accepted")
	}
	select {
	case <-w2.down:
	default:
		t.Fatal("down not closed on leave")
	}
	if got := r.heartbeat(w2.id); got != hbGone {
		t.Fatalf("retired heartbeat verdict = %d, want hbGone", got)
	}

	// Silence past the suspect timeout: exactly one death.
	walltime.Sleep(70 * time.Millisecond)
	if died := r.scan(); len(died) != 1 || !strings.Contains(died[0], w1.id) {
		t.Fatalf("scan retired %v, want exactly %s", died, w1.id)
	}
	if died := r.scan(); len(died) != 0 {
		t.Fatalf("second scan re-retired: %v", died)
	}
	r.condemn(w1) // idempotent: already gone
	alive, deaths, leaves := r.counts()
	if alive != 0 || deaths != 1 || leaves != 1 {
		t.Fatalf("alive/deaths/leaves = %d/%d/%d, want 0/1/1", alive, deaths, leaves)
	}
}

func TestRegistryReRegisterSameURL(t *testing.T) {
	r := newRegistry(time.Minute)
	old := r.register("http://a:1", 1, "hostA:/cache")
	r.markWarm(old.cacheID, "cell-1")
	fresh := r.register("http://a:1/", 1, "hostA:/cache")
	if fresh.id == old.id {
		t.Fatal("re-registration reused the ID")
	}
	select {
	case <-old.down:
	default:
		t.Fatal("old incarnation not retired on re-register")
	}
	alive, deaths, leaves := r.counts()
	if alive != 1 || deaths != 0 || leaves != 1 {
		t.Fatalf("alive/deaths/leaves = %d/%d/%d, want 1/0/1 (re-register is a leave, not a death)", alive, deaths, leaves)
	}
	// Warmth keys on the cache identity, so the new incarnation inherits it.
	if got := r.pick("cell-1", nil); got != fresh {
		t.Fatalf("warm pick = %v, want the fresh incarnation", got)
	}
}

func TestPickRouting(t *testing.T) {
	r := newRegistry(time.Minute)
	a := r.register("http://a:1", 1, "hostA:/cache")
	b := r.register("http://b:1", 1, "hostB:/cache")

	// Cold keys route by rendezvous: deterministic for a fixed key.
	first := r.pick("cold-key", nil)
	for i := 0; i < 5; i++ {
		if got := r.pick("cold-key", nil); got != first {
			t.Fatal("rendezvous choice is unstable")
		}
	}

	// Warmth beats rendezvous.
	other := a
	if first == a {
		other = b
	}
	r.markWarm(other.cacheID, "cold-key")
	if got := r.pick("cold-key", nil); got != other {
		t.Fatal("warm worker not preferred")
	}

	// Exclusion removes the warm node; the other one takes it.
	if got := r.pick("cold-key", map[string]bool{other.id: true}); got != first {
		t.Fatalf("exclusion ignored: got %v", got)
	}
	if got := r.pick("cold-key", map[string]bool{a.id: true, b.id: true}); got != nil {
		t.Fatalf("pick with everyone excluded = %v, want nil", got)
	}

	// Saturation: a worker more than one past capacity loses rendezvous
	// standing; the spill path balances by relative load.
	r.acquire(first)
	r.acquire(first) // inflight 2 > capacity 1
	second := a
	if first == a {
		second = b
	}
	if got := r.pick("another-cold-key-x", nil); got == first && first.inflight > first.capacity {
		// Rendezvous may legitimately have chosen `second`; only a saturated
		// winner is wrong.
		t.Fatalf("saturated worker still wins rendezvous")
	}
	_ = second
}

func TestWaitForWorker(t *testing.T) {
	r := newRegistry(time.Minute)
	stop := make(chan struct{})
	if r.waitForWorker(20*time.Millisecond, stop) {
		t.Fatal("waitForWorker reported a worker in an empty registry")
	}
	done := make(chan bool, 1)
	go func() { done <- r.waitForWorker(2*time.Second, stop) }()
	walltime.Sleep(10 * time.Millisecond)
	r.register("http://a:1", 1, "")
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("waitForWorker missed the join broadcast")
		}
	case <-walltime.NewTimer(time.Second).C():
		t.Fatal("waitForWorker did not wake on join")
	}
}

// --- client ---

func TestClientHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	var retries []int
	c := &Client{BaseBackoff: time.Millisecond, OnRetry: func(status int, d time.Duration) {
		retries = append(retries, status)
		if d > 10*time.Millisecond {
			t.Errorf("Retry-After: 0 produced delay %v (header not honored)", d)
		}
	}}
	status, body, err := c.Do(context.Background(), http.MethodGet, ts.URL, nil)
	if err != nil || status != http.StatusOK || string(body) != "ok" {
		t.Fatalf("Do = %d %q %v", status, body, err)
	}
	if len(retries) != 2 || retries[0] != http.StatusTooManyRequests {
		t.Fatalf("OnRetry saw %v, want two 429s", retries)
	}
}

func TestClientBackoffCapAndExhaustion(t *testing.T) {
	c := &Client{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	// A huge Retry-After is capped (plus <=25% jitter).
	if d := c.delay(0, "3600"); d > 300*time.Millisecond+75*time.Millisecond+time.Nanosecond {
		t.Fatalf("delay %v exceeds the cap", d)
	}
	// Exponential growth also caps.
	if d := c.delay(10, ""); d > 375*time.Millisecond+time.Nanosecond {
		t.Fatalf("attempt-10 delay %v exceeds the cap", d)
	}

	// A 429 on the final attempt returns to the caller instead of erroring:
	// the server's verdict, not the client's.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	fast := &Client{MaxAttempts: 2, BaseBackoff: time.Millisecond}
	status, _, err := fast.Do(context.Background(), http.MethodGet, ts.URL, nil)
	if err != nil || status != http.StatusTooManyRequests {
		t.Fatalf("exhausted Do = %d, %v; want the final 429", status, err)
	}

	// Transport errors exhaust into an error.
	dead := &Client{MaxAttempts: 2, BaseBackoff: time.Millisecond}
	if _, _, err := dead.Do(context.Background(), http.MethodGet, "http://127.0.0.1:1/nope", nil); err == nil {
		t.Fatal("transport failure did not error after exhaustion")
	}
}

// --- coordinator integration (real servers over loopback HTTP) ---

// testWorker is one real svmsimd worker behind an httptest listener.
type testWorker struct {
	srv *server.Server
	ts  *httptest.Server
}

func startWorker(t *testing.T, cacheDir string) *testWorker {
	t.Helper()
	suite := exp.NewSuite(exp.Small)
	suite.CacheDir = cacheDir
	srv, err := server.New(server.Config{Suite: suite, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return &testWorker{srv: srv, ts: ts}
}

func newTestCoordinator(t *testing.T, cfg Config) (*Coordinator, *httptest.Server) {
	t.Helper()
	if cfg.Suite == nil {
		cfg.Suite = exp.NewSuite(exp.Small)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		coord.Drain(ctx)
	})
	return coord, ts
}

// registerHTTP registers a worker URL with the coordinator over the wire.
func registerHTTP(t *testing.T, coordURL, workerURL, cacheID string) string {
	t.Helper()
	body, _ := json.Marshal(regRequest{URL: workerURL, Capacity: 1, CacheID: cacheID})
	resp, err := http.Post(coordURL+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg regResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("registration: status %d, err %v", resp.StatusCode, err)
	}
	return reg.ID
}

// submitAndWait drives the coordinator's public API like a client would.
func submitAndWait(t *testing.T, base, path string, body []byte) (int, []byte) {
	t.Helper()
	c := &Client{}
	status, data, err := c.Do(context.Background(), http.MethodPost, base+path, body)
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK && status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, data)
	}
	var view struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &view); err != nil || view.ID == "" {
		t.Fatalf("submit response %q", data)
	}
	for {
		status, data, err = c.Do(context.Background(), http.MethodGet, base+"/v1/jobs/"+view.ID+"/result?wait=1", nil)
		if err != nil {
			t.Fatal(err)
		}
		if status == http.StatusConflict || status == http.StatusServiceUnavailable {
			continue
		}
		return status, data
	}
}

// metricValue scrapes one sample from the coordinator's /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v)
			return v
		}
	}
	return 0
}

// TestFleetSweepByteIdentical is the end-to-end contract: a sweep served by
// a coordinator dispatching to two workers must produce byte-for-byte the
// document a single local daemon produces, with zero local simulations on
// the coordinator.
func TestFleetSweepByteIdentical(t *testing.T) {
	suite := exp.NewSuite(exp.Small)
	var localSims atomic.Int64
	suite.Observe = func(ev exp.CellEvent) {
		if ev.Source == exp.SourceSim {
			localSims.Add(1)
		}
	}
	_, coordURL := newTestCoordinator(t, Config{Suite: suite, SuspectTimeout: time.Minute, HedgeFactor: -1})
	w1 := startWorker(t, "")
	w2 := startWorker(t, "")
	registerHTTP(t, coordURL.URL, w1.ts.URL, "w1:/cache")
	registerHTTP(t, coordURL.URL, w2.ts.URL, "w2:/cache")

	spec := []byte(`{"param":"interrupt","apps":["FFT"]}`)
	status, got := submitAndWait(t, coordURL.URL, "/v1/sweeps", spec)
	if status != http.StatusOK {
		t.Fatalf("sweep failed: %d %s", status, got)
	}

	ref := exp.NewSuite(exp.Small)
	res, err := ref.RunSweep(exp.SweepSpec{Param: "interrupt", Apps: []string{"FFT"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exp.EncodeSweepResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet sweep differs from local sweep:\nfleet:\n%s\nlocal:\n%s", got, want)
	}
	if n := localSims.Load(); n != 0 {
		t.Fatalf("coordinator simulated %d cells locally; the fleet should have taken all of them", n)
	}
	if v := metricValue(t, coordURL.URL, "fleet_local_fallbacks_total"); v != 0 {
		t.Fatalf("fleet_local_fallbacks_total = %g, want 0", v)
	}
}

// TestFleetRedispatchOnWorkerDeath: a worker that accepts a cell and then
// goes silent must be declared dead by the failure detector, its in-flight
// cell aborted (down-channel cancellation, not an HTTP timeout) and
// re-dispatched onto a live worker — and the job still completes correctly.
func TestFleetRedispatchOnWorkerDeath(t *testing.T) {
	// The black hole accepts submissions and never answers result polls.
	accepted := make(chan struct{}, 16)
	blackHole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			accepted <- struct{}{}
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"j1","state":"queued"}`)
			return
		}
		<-r.Context().Done() // hang until the caller gives up
	}))
	defer blackHole.Close()

	coord, coordURL := newTestCoordinator(t, Config{
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    300 * time.Millisecond,
		WorkerWait:        10 * time.Second,
		HedgeFactor:       -1,
	})
	registerHTTP(t, coordURL.URL, blackHole.URL, "dead:/cache")

	// Submit one cell; it must land on the black hole (the only worker).
	done := make(chan []byte, 1)
	go func() {
		_, data := submitAndWait(t, coordURL.URL, "/v1/cells", []byte(`{"workload":"LU"}`))
		done <- data
	}()
	select {
	case <-accepted:
	case <-walltime.NewTimer(5 * time.Second).C():
		t.Fatal("black hole never saw the dispatch")
	}

	// Now a real worker joins and heartbeats; the black hole stays silent
	// and must be retired by the monitor, re-routing the in-flight cell.
	live := startWorker(t, "")
	m := Join(&Client{}, coordURL.URL, WorkerInfo{URL: live.ts.URL, Capacity: 1}, 50*time.Millisecond, t.Logf)
	defer m.Leave()

	var data []byte
	select {
	case data = <-done:
	case <-walltime.NewTimer(60 * time.Second).C():
		t.Fatal("cell never completed after worker death")
	}
	res, err := exp.DecodeCellResult(data)
	if err != nil || res.Run == nil {
		t.Fatalf("redispatched cell result: %v (%s)", err, data)
	}

	waitUntil(t, 5*time.Second, "death metric", func() bool {
		return metricValue(t, coordURL.URL, "fleet_worker_deaths_total") >= 1
	})
	if v := metricValue(t, coordURL.URL, "fleet_jobs_redispatched_total"); v < 1 {
		t.Fatalf("fleet_jobs_redispatched_total = %g, want >= 1", v)
	}
	_ = coord
}

// TestFleetFallsBackWithNoWorkers: a worker-less coordinator degrades to a
// plain daemon — the cell simulates locally after WorkerWait and the
// degradation is visible in metrics.
func TestFleetFallsBackWithNoWorkers(t *testing.T) {
	_, coordURL := newTestCoordinator(t, Config{WorkerWait: 50 * time.Millisecond, HedgeFactor: -1})
	status, data := submitAndWait(t, coordURL.URL, "/v1/cells", []byte(`{"workload":"LU"}`))
	if status != http.StatusOK {
		t.Fatalf("fallback cell failed: %d %s", status, data)
	}
	if v := metricValue(t, coordURL.URL, "fleet_local_fallbacks_total"); v != 1 {
		t.Fatalf("fleet_local_fallbacks_total = %g, want 1", v)
	}
}

// TestFleetNoFallbackFailsTyped: with DisableLocalFallback an unplaceable
// cell must fail with the structured redispatch_exhausted kind instead of
// burning coordinator CPU.
func TestFleetNoFallbackFailsTyped(t *testing.T) {
	_, coordURL := newTestCoordinator(t, Config{
		WorkerWait:           50 * time.Millisecond,
		DisableLocalFallback: true,
		MaxDispatches:        2,
		HedgeFactor:          -1,
	})
	status, data := submitAndWait(t, coordURL.URL, "/v1/cells", []byte(`{"workload":"LU"}`))
	if status != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (failed cell)", status)
	}
	if !strings.Contains(string(data), "redispatch_exhausted") {
		t.Fatalf("error body lacks the typed kind: %s", data)
	}
}

// TestLateResultDedup exercises the hedge path deterministically by driving
// dispatch directly: the primary worker is slowed, the hedge lands on the
// fast one, and the primary's eventual answer must dedupe (counted, warmth
// recorded, result dropped).
func TestLateResultDedup(t *testing.T) {
	slowGate := make(chan struct{})
	slow := startWorker(t, "")
	slowProxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			<-slowGate // hold every result poll until released
		}
		slow.ts.Config.Handler.ServeHTTP(w, r)
	}))
	defer slowProxy.Close()
	fast := startWorker(t, "")

	coord, _ := newTestCoordinator(t, Config{HedgeFactor: 1, HedgeMin: 20 * time.Millisecond})
	primary := coord.reg.register(slowProxy.URL, 1, "slow:/cache")
	coord.reg.register(fast.ts.URL, 1, "fast:/cache")

	// Seed the latency ring so hedgeDelay has a p99 to work from.
	for i := 0; i < 10; i++ {
		coord.metrics.completedOn("seed", 0.005)
	}

	suite := exp.NewSuite(exp.Small)
	cell, err := suite.ResolveCell(exp.CellSpec{Workload: "LU"})
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := exp.SpecFromCell(cell)
	if !ok {
		t.Fatal("baseline cell not wire-expressible")
	}

	res, err := coord.dispatch(primary, cell.Key(), spec)
	if err != nil {
		t.Fatalf("hedged dispatch failed: %v", err)
	}
	if res.Run == nil || res.Key != cell.Key() {
		t.Fatalf("hedged result malformed: %+v", res)
	}
	close(slowGate) // let the straggler finish; its result is late

	waitUntil(t, 30*time.Second, "late-result dedup", func() bool {
		coord.metrics.mu.Lock()
		defer coord.metrics.mu.Unlock()
		return coord.metrics.late == 1 && coord.metrics.hedges == 1
	})
	// Both cache identities are now warm for the cell: the straggler's disk
	// has the bytes too, and routing should know.
	coord.reg.mu.Lock()
	warmSlow := coord.reg.warm["slow:/cache"][cell.Key()]
	warmFast := coord.reg.warm["fast:/cache"][cell.Key()]
	coord.reg.mu.Unlock()
	if !warmSlow || !warmFast {
		t.Fatalf("warmth after late result: slow=%v fast=%v, want both true", warmSlow, warmFast)
	}
}

// TestMembershipRejoinsAfterCoordinatorRestart: a coordinator restart wipes
// its registry; the worker's next heartbeat gets 404 and the membership
// loop must re-register without operator help.
func TestMembershipRejoinsAfterCoordinatorRestart(t *testing.T) {
	var current atomic.Pointer[Coordinator]
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		current.Load().Handler().ServeHTTP(w, r)
	}))
	defer front.Close()

	mk := func() *Coordinator {
		c, err := New(Config{Suite: exp.NewSuite(exp.Small), SuspectTimeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			c.Drain(ctx)
		})
		return c
	}
	c1 := mk()
	current.Store(c1)

	m := Join(&Client{BaseBackoff: 5 * time.Millisecond}, front.URL, WorkerInfo{URL: "http://worker:1"}, 20*time.Millisecond, t.Logf)
	defer m.Leave()
	waitUntil(t, 5*time.Second, "initial registration", func() bool {
		alive, _, _ := c1.reg.counts()
		return alive == 1
	})

	// "Restart": a fresh coordinator with an empty registry takes over the
	// same address.
	c2 := mk()
	current.Store(c2)
	waitUntil(t, 5*time.Second, "re-registration with the restarted coordinator", func() bool {
		alive, _, _ := c2.reg.counts()
		return alive == 1
	})
}

// TestRegistrationSeedsWarmth: warm keys reported in the registration body
// must land in the coordinator's warm map so affinity routing works from
// the first dispatch — the mechanism that rebuilds warmth after a
// coordinator restart wiped the in-memory map.
func TestRegistrationSeedsWarmth(t *testing.T) {
	coord, ts := newTestCoordinator(t, Config{SuspectTimeout: time.Minute})
	body, _ := json.Marshal(regRequest{
		URL: "http://warmhost:1", CacheID: "warmhost:/cache",
		WarmKeys: []string{"cell-a", "cell-b"},
	})
	resp, err := http.Post(ts.URL+"/v1/workers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("registration: %d", resp.StatusCode)
	}
	registerHTTP(t, ts.URL, "http://coldhost:1", "coldhost:/cache")

	for _, key := range []string{"cell-a", "cell-b"} {
		w := coord.reg.pick(key, nil)
		if w == nil || w.cacheID != "warmhost:/cache" {
			t.Fatalf("pick(%s) did not honor registration-time warmth: %+v", key, w)
		}
	}
}

// TestCoordinatorDrainRefusesWorkers: registrations during drain are 503 —
// the fleet is going away, workers should not be told to stick around.
func TestCoordinatorDrainRefusesWorkers(t *testing.T) {
	coord, err := New(Config{Suite: exp.NewSuite(exp.Small)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/workers", strings.NewReader(`{"url":"http://a:1"}`))
	rec := httptest.NewRecorder()
	coord.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("registration during drain = %d, want 503", rec.Code)
	}
}
