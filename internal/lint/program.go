package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Program is the whole load set: every package of one svmlint run, checked in
// dependency order by the loader so that a function, type or field referenced
// from two different packages resolves to the same types.Object. That single
// property is what turns the per-file walker into a whole-program analyzer —
// a call graph edge recorded in internal/server can name the exact
// *types.Func declared in internal/engine, and a struct field declared in
// internal/stats can be matched against write sites in internal/node.
type Program struct {
	Fset *token.FileSet
	// ModuleRoot is the directory containing go.mod; finding paths are
	// normalized against it for baseline matching.
	ModuleRoot string
	// Pkgs is every loaded package in deterministic (directory) order.
	Pkgs []*Package

	graph *CallGraph
}

// CallGraph is the program's static call graph: one node per function or
// method declaration with a body, edges to every callee the type checker can
// resolve statically. Calls inside function literals are attributed to the
// enclosing declaration (the literal runs with the declaration's dynamic
// context as far as lock discipline is concerned, and if it escapes to
// another goroutine the attribution is merely conservative). Dynamic calls —
// through function values, interface methods with unresolved receivers — are
// not edges; analyzers that need soundness there must say so in their docs.
type CallGraph struct {
	funcs   []*types.Func                 // deterministic declaration order
	callees map[*types.Func][]*types.Func // deduped, in source order
	decls   map[*types.Func]*ast.FuncDecl
}

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.graph != nil {
		return p.graph
	}
	cg := &CallGraph{
		callees: map[*types.Func][]*types.Func{},
		decls:   map[*types.Func]*ast.FuncDecl{},
	}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || pkg.Info == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				cg.funcs = append(cg.funcs, fn)
				cg.decls[fn] = fd
				seen := map[*types.Func]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := pkg.calleeOf(call); callee != nil && !seen[callee] {
						seen[callee] = true
						cg.callees[fn] = append(cg.callees[fn], callee)
					}
					return true
				})
			}
		}
	}
	p.graph = cg
	return cg
}

// DeclOf returns the AST declaration of fn, when fn is declared (with a
// body) inside the program.
func (cg *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return cg.decls[fn] }

// ReachAny computes, for every declared function that can transitively reach
// a function matching seed, the first callee on one witness path. Seed
// functions themselves are excluded (their own bodies are the implementation
// of the property, not users of it). The map is deterministic: functions are
// relaxed in declaration order and callees in source order, so the chosen
// witness never depends on map iteration.
func (cg *CallGraph) ReachAny(seed func(*types.Func) bool) map[*types.Func]*types.Func {
	reaches := map[*types.Func]*types.Func{}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.funcs {
			if seed(fn) {
				continue
			}
			if _, ok := reaches[fn]; ok {
				continue
			}
			for _, c := range cg.callees[fn] {
				if seed(c) || reaches[c] != nil {
					reaches[fn] = c
					changed = true
					break
				}
			}
		}
	}
	return reaches
}

// calleeOf statically resolves a call expression to the *types.Func it
// invokes: a plain function, a method (through a selection), or a
// package-qualified function. Returns nil for dynamic calls, conversions and
// builtins.
func (p *Package) calleeOf(call *ast.CallExpr) *types.Func {
	if p.Info == nil {
		return nil
	}
	fun := call.Fun
	for {
		paren, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = paren.X
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := p.objectOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified: pkg.Fn(...).
		fn, _ := p.objectOf(fun.Sel).(*types.Func)
		return fn
	}
	return nil
}

// funcLabel renders a function for diagnostics in the short, module-path-free
// form "(*engine.Thread).Park" / "proto.recoverLocks".
func funcLabel(fn *types.Func) string {
	name := fn.Name()
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
			star = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + star + pkgName + "." + named.Obj().Name() + ")." + name
		}
	}
	if pkgName != "" {
		return pkgName + "." + name
	}
	return name
}
