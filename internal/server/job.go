package server

import (
	"encoding/json"
	"fmt"

	"svmsim/internal/exp"
	"svmsim/internal/walltime"
)

// Job lifecycle states.
const (
	statusQueued      = "queued"
	statusRunning     = "running"
	statusDone        = "done"
	statusFailed      = "failed"
	statusQuarantined = "quarantined"
)

// job is one accepted unit of work: a cell or a sweep. Once accepted a job
// is never dropped — its accept record is fsynced to the journal before the
// client sees 202, it either runs to completion on the worker pool (with
// watchdog-bounded attempts) or is drained to completion at shutdown, and a
// daemon crash re-enqueues it from the journal on restart. Admission
// control (429) happens before a job exists.
type job struct {
	id   string
	kind string // "cell" or "sweep"
	key  string // content address of the underlying work

	cell  exp.Cell        // kind == "cell"
	sweep exp.SweepSpec   // kind == "sweep"
	spec  json.RawMessage // wire spec as submitted, journaled for replay

	// Guarded by the server mutex.
	status   string
	attempts int    // watchdog attempts consumed (journal-restored on replay)
	cached   bool   // served from the result store, zero simulations
	errKind  string // structured error classification when failed
	errMsg   string
	result   []byte // canonical result document (also set for failed cells)

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// stored is one content-addressed result store entry: the canonical result
// bytes plus the error classification a resubmission must reproduce.
type stored struct {
	result  []byte
	errKind string
	errMsg  string
}

// outcome is one finished execution attempt.
type outcome struct {
	data    []byte
	errKind string
	errMsg  string
}

// workers run jobs from the queue until it is closed (drain).
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob supervises one job: each attempt executes on its own goroutine
// while the worker waits on either the outcome or the wall-clock deadline
// (via the walltime boundary — the simulation itself never sees host time).
// A deadline trip marks the attempt failed with a typed *exp.JobTimeoutError
// and retries with exponential backoff, bounded by maxAttempts; a job that
// exhausts its budget is quarantined instead of crash-looping. The abandoned
// attempt's goroutine is not cancellable (the simulator has no preemption
// points) — it keeps running, its eventual result lands harmlessly in the
// suite cache, and a later attempt for the same key joins it through the
// suite's singleflight rather than simulating twice.
func (s *Server) runJob(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	for {
		attempt := s.startAttempt(j)

		resc := make(chan outcome, 1)
		go func() { resc <- s.execute(j) }()

		var deadline *walltime.Timer
		if s.jobDeadline > 0 {
			deadline = walltime.NewTimer(s.jobDeadline)
		}
		if deadline == nil {
			s.finishJob(j, <-resc)
			return
		}
		select {
		case out := <-resc:
			deadline.Stop()
			s.finishJob(j, out)
			return
		case <-deadline.C():
			s.metrics.timedOut()
			terr := &exp.JobTimeoutError{Key: j.key, Attempt: attempt, Deadline: s.jobDeadline}
			if attempt >= s.maxAttempts {
				s.quarantineJob(j, terr)
				return
			}
			s.metrics.retried()
			s.appendJournal(journalRecord{Op: opRetry, ID: j.id, Attempt: attempt})
			// Exponential backoff between attempts: base, 2x, 4x, ... The
			// shift is bounded by maxAttempts, itself a small flag value.
			walltime.Sleep(s.retryBack << (attempt - 1))
		}
	}
}

// startAttempt transitions a job to running, burns one attempt, and
// journals the start (so a crash mid-attempt cannot reset the budget).
func (s *Server) startAttempt(j *job) int {
	s.mu.Lock()
	j.status = statusRunning
	j.attempts++
	attempt := j.attempts
	s.journal.append(journalRecord{Op: opStart, ID: j.id, Attempt: attempt})
	s.mu.Unlock()
	return attempt
}

// execute runs one attempt to its outcome. It mutates no job state — the
// supervisor in runJob owns all transitions — so an attempt abandoned by the
// watchdog can finish late without clobbering anything. A failed cell still
// produces a result document (the structured CellResult carrying
// err_kind/err), exactly as the disk cache stores it.
func (s *Server) execute(j *job) outcome {
	var data []byte
	var errKind, errMsg string
	var encErr error
	switch j.kind {
	case "cell":
		run, err := s.suite.RunCell(j.cell)
		if err != nil {
			errKind, errMsg = exp.ErrKind(err), err.Error()
		}
		data, encErr = exp.EncodeCellResult(exp.NewCellResult(j.key, run, err))
	case "sweep":
		res, err := s.suite.RunSweep(j.sweep)
		if err != nil {
			errKind, errMsg = exp.ErrKind(err), err.Error()
		} else {
			data, encErr = exp.EncodeSweepResult(res)
		}
	default:
		errKind, errMsg = "failed", fmt.Sprintf("unknown job kind %q", j.kind)
	}
	if encErr != nil {
		errKind, errMsg = "failed", "encoding result: "+encErr.Error()
		data = nil
	}
	return outcome{data: data, errKind: errKind, errMsg: errMsg}
}

// finishJob publishes a terminal state, stores the result under its content
// key, journals the completion, and updates the metrics.
func (s *Server) finishJob(j *job, out outcome) {
	s.mu.Lock()
	j.result = out.data
	j.errKind, j.errMsg = out.errKind, out.errMsg
	if out.errMsg != "" {
		j.status = statusFailed
	} else {
		j.status = statusDone
	}
	if out.data != nil {
		s.store[j.key] = stored{result: out.data, errKind: out.errKind, errMsg: out.errMsg}
	}
	s.releaseKeyLocked(j)
	// A finish record that fails to persist only costs a warm re-run after
	// a crash (at-least-once semantics); the durability contract is on
	// accepts, so the error is deliberately not propagated.
	s.appendJournalLocked(journalRecord{Op: opFinish, ID: j.id, Attempt: j.attempts, ErrKind: out.errKind, Err: out.errMsg})
	s.mu.Unlock()
	s.metrics.finished(out.errMsg != "")
	close(j.done)
}

// quarantineJob parks a poison job in the terminal quarantined state: it
// stays addressable (clients get its structured timeout error), survives
// restarts through the journal, and is never re-enqueued.
func (s *Server) quarantineJob(j *job, err error) {
	s.mu.Lock()
	j.status = statusQuarantined
	j.errKind, j.errMsg = exp.ErrKind(err), err.Error()
	s.releaseKeyLocked(j)
	s.appendJournalLocked(journalRecord{Op: opQuarantine, ID: j.id, Attempt: j.attempts, ErrKind: j.errKind, Err: j.errMsg})
	s.mu.Unlock()
	s.metrics.quarantined()
	close(j.done)
}

// releaseKeyLocked retires a job's claim on the active-key index (the
// idempotent-resubmission map). The caller holds s.mu.
func (s *Server) releaseKeyLocked(j *job) {
	if s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
}

// appendJournalLocked journals a non-accept transition and compacts the
// file once dead records dominate. The caller holds s.mu, which serializes
// every journal mutation — so the compaction snapshot cannot miss a
// concurrent append.
func (s *Server) appendJournalLocked(rec journalRecord) {
	s.journal.append(rec)
	if s.journal.shouldCompact(s.liveJournalLocked()) {
		s.journal.rewrite(s.journalSnapshotLocked())
	}
}

// appendJournal is appendJournalLocked for callers not holding s.mu.
func (s *Server) appendJournal(rec journalRecord) {
	s.mu.Lock()
	s.appendJournalLocked(rec)
	s.mu.Unlock()
}

// liveJournalLocked counts the jobs a compaction must keep.
func (s *Server) liveJournalLocked() int {
	n := 0
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			switch j.status {
			case statusQueued, statusRunning, statusQuarantined:
				n++
			}
		}
	}
	return n
}

// journalSnapshotLocked rebuilds the minimal journal for the current job
// index: accepts for queued/running jobs, accept+quarantine for quarantined
// ones. Finished jobs are dropped — their per-cell results persist in the
// suite's disk cache. The caller holds s.mu; s.order keeps the output
// deterministic.
func (s *Server) journalSnapshotLocked() []journalRecord {
	var recs []journalRecord
	for _, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			continue
		}
		switch j.status {
		case statusQueued, statusRunning:
			recs = append(recs, journalRecord{Op: opAccept, ID: j.id, Kind: j.kind, Key: j.key, Spec: j.spec, Attempt: j.attempts})
		case statusQuarantined:
			recs = append(recs,
				journalRecord{Op: opAccept, ID: j.id, Kind: j.kind, Key: j.key, Spec: j.spec, Attempt: j.attempts},
				journalRecord{Op: opQuarantine, ID: j.id, Attempt: j.attempts, ErrKind: j.errKind, Err: j.errMsg})
		}
	}
	return recs
}

// newJobLocked allocates a job record and registers it; the caller holds
// s.mu. Job IDs are a process-local sequence — no clocks, no randomness —
// continued across restarts from the journal's high-water mark.
func (s *Server) newJobLocked(kind, key string) *job {
	s.seq++
	j := &job{
		id:     fmt.Sprintf("j%d", s.seq),
		kind:   kind,
		key:    key,
		status: statusQueued,
		done:   make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j
}

// evictLocked bounds the completed-job index: when more than maxJobs records
// exist, the oldest terminal jobs are forgotten (their results stay in the
// content-addressed store). Queued or running jobs are never evicted.
func (s *Server) evictLocked() {
	for len(s.jobs) > s.maxJobs {
		evicted := false
		for i, id := range s.order {
			j, ok := s.jobs[id]
			if !ok {
				continue
			}
			if j.status == statusDone || j.status == statusFailed || j.status == statusQuarantined {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything live; let the map grow rather than lose a job
		}
	}
}

// inflightCount is the inflight gauge reader.
func (s *Server) inflightCount() int { return int(s.inflight.Load()) }
